//===- examples/gisc.cpp - Command-line driver ------------------------------===//
//
// gisc: compile, schedule, inspect and run programs from the command line.
//
//   usage: gisc [options] <input-file>...
//
//   The input is mini-C by default, or GIS assembly with --asm (the syntax
//   of the paper's Figure 2, as printed by --dump-ir).
//
//   batch compilation (engine/CompileEngine.h):
//     --jobs N                   schedule functions on N worker threads
//                                (0: all hardware threads); implies the
//                                engine path
//     --region-jobs N            schedule independent regions of each
//                                function on N threads (0: all hardware
//                                threads); output is bit-identical for
//                                every N; works on both paths
//     --batch FILE               read additional input paths from FILE
//                                (one per line, '#' comments)
//     --no-cache                 disable the content-addressed schedule
//                                cache
//     --no-incremental           recompute liveness/heuristics/ready sets
//                                from scratch instead of incrementally;
//                                output is bit-identical (DESIGN.md s.14)
//     Passing several input files (or --jobs/--batch) selects the engine
//     path: all files are front-ended, every function is scheduled on the
//     worker pool, and outputs/stats are emitted in input order.  The
//     engine path supports the scheduling/inspection options below;
//     --run/--profile/--report need a single input without --jobs/--batch.
//
//   persistence and serving (src/persist/):
//     --cache-dir DIR            disk-backed schedule cache under DIR
//                                (shared across processes; survives
//                                restarts); implies the engine path.  An
//                                unusable DIR is a startup error with
//                                exit code 3; I/O failures after startup
//                                degrade to memory-only with a diagnostic
//     --cache-dir-max-mb N       bound the cache directory to N MiB;
//                                oldest entries are evicted at publish
//                                time (0, the default: unbounded)
//     --serve PATH               run as a compile daemon on Unix socket
//                                PATH (no input files needed); SIGTERM or
//                                SIGINT drains the queue and exits
//     --serve-workers N          daemon worker threads (default 2)
//     --serve-queue N            admission-queue bound; requests beyond
//                                it are shed with a retry hint (default 16)
//     --client PATH              send the input files to the daemon at
//                                PATH instead of compiling locally;
//                                scheduled modules print to stdout
//     --deadline-ms N            per-request deadline (default 30000)
//     --retries N                client retries on shed/connect failure,
//                                with exponential backoff + jitter
//                                (default 4)
//
//   mid-end optimizer (src/opt/):
//     -O0 | -O1 | -O2            optimization level before scheduling
//                                (default -O0: no passes; -O1: peephole +
//                                dead-code; -O2: all passes)
//     --opt-PASS --no-opt-PASS   force one pass on/off regardless of the
//                                level (PASS: peephole, strength, gvn, dce)
//     --list-passes              list the optimizer passes (pipeline
//                                order, per-level enablement) and exit
//   scheduling:
//     --level none|useful|spec   global scheduling level (default spec)
//     --spec-depth N             branches to gamble on (default 1)
//     --order paper|d|cp|source  priority-rule ordering (default paper)
//     --no-unroll --no-rotate --no-local --no-renaming --no-prerename
//     --all-levels               schedule every region nesting level
//     --duplication              enable join replication (Definition 6)
//     --superblocks              superblock formation: trace picking +
//                                tail duplication + superblock scheduling
//                                (profile-guided with --profile)
//     --trace-max-blocks N       trace length cap in blocks (default 8)
//     --trace-dup-budget N       per-function cap on instructions cloned
//                                by tail duplication (default 64)
//   machine:
//     --machine rs6k             (default)
//     --machine FXxFPxBR         e.g. --machine 4x1x2
//     --regs-gpr N               override the register-file sizes of the
//     --regs-fpr N               selected machine (defaults: 32 GPR,
//     --regs-cr N                32 FPR, 8 CR)
//     --list-machines            list built-in machines (unit counts and
//                                register files) and exit
//   register allocation (src/regalloc/):
//     --regalloc                 map onto the machine's finite register
//                                files after scheduling (spill code where
//                                pressure exceeds them) and reschedule
//                                each block
//     --no-postalloc-resched     skip the post-allocation local pass
//   observability (src/obs/):
//     --stats-json FILE          machine-readable statistics + the full
//                                obs counter registry as JSON
//     --trace-json FILE          Chrome-trace JSON of the run (stages,
//                                waves, regions, blocks, per-pick events);
//                                load in chrome://tracing or Perfetto
//     --explain                  per-pick decision log: candidate set,
//                                winning Section 5.2 rule, motion class
//     --no-counters              skip the obs counter registry
//   inspection (to stdout):
//     --dump-ir-before           IR as generated
//     --dump-ir                  IR after scheduling
//     --dump-cfg                 CFG in DOT          (pipe to `dot -Tsvg`)
//     --dump-cspdg               CSPDG + equivalences in DOT, per region
//     --dump-ddg                 data dependence graph in DOT, per region
//     --stats                    scheduling statistics
//     --report                   before/after per-function table
//   execution:
//     --run[=ENTRY]              interpret after scheduling (default: main)
//     --arg N                    argument for the entry (repeatable)
//     --cycles                   also report simulated RS/6000 cycles
//     --predictor none|taken|bimodal|oracle
//                                branch predictor for --cycles (default
//                                none: branches cost nothing, as in the
//                                paper's model); mispredicts charge a
//                                refetch penalty
//     --mispredict-penalty N     refetch penalty in cycles (default 3)
//     --profile                  run the entry once before scheduling and
//                                feed the block and branch-edge
//                                frequencies to the scheduler
//                                (profile-guided speculation and
//                                superblock formation)
//
//===----------------------------------------------------------------------===//

#include "analysis/GraphViz.h"
#include "analysis/LoopInfo.h"
#include "analysis/RegPressure.h"
#include "engine/CompileEngine.h"
#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "machine/Timing.h"
#include "obs/StatsJson.h"
#include "obs/Trace.h"
#include "opt/Pass.h"
#include "persist/Client.h"
#include "persist/PersistIO.h"
#include "persist/Server.h"
#include "sched/Pipeline.h"
#include "sched/Profile.h"
#include "sched/Report.h"

#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

using namespace gis;

namespace {

struct CliOptions {
  std::vector<std::string> InputPaths;
  bool InputIsAsm = false;
  PipelineOptions Pipeline;
  MachineDescription Machine = MachineDescription::rs6k();
  /// --regs-gpr/--regs-fpr/--regs-cr (-1: keep the machine's default);
  /// applied after --machine so the order of the flags does not matter.
  std::array<int, 3> RegsOverride = {-1, -1, -1};
  bool ListMachines = false;
  bool ListPasses = false;
  bool DumpIRBefore = false;
  bool DumpIR = false;
  bool DumpCFG = false;
  bool DumpCSPDG = false;
  bool DumpDDG = false;
  bool Stats = false;
  bool Report = false;
  bool Run = false;
  std::string Entry = "main";
  std::vector<int64_t> Args;
  bool Cycles = false;
  bool Profile = false;
  /// --predictor / --mispredict-penalty (machine/BranchPredictor.h); the
  /// oracle kind prices the --cycles trace against a profile taken from
  /// that same run -- the best static prediction possible for it.
  BranchPredictorOptions Predictor;
  bool EngineRequested = false; ///< --jobs or --batch given
  unsigned Jobs = 1;
  bool UseCache = true;
  std::vector<std::string> BatchFiles;
  std::string TraceJsonPath;
  std::string StatsJsonPath;
  bool Explain = false;
  /// Persistence and serving (src/persist/).
  std::string CacheDir;
  uint64_t CacheDirMaxMb = 0; ///< 0: unbounded
  std::string ServePath;
  std::string ClientPath;
  unsigned ServeWorkers = 2;
  unsigned ServeQueue = 16;
  unsigned DeadlineMs = 30000;
  unsigned Retries = 4;
};

void usage() {
  std::cerr << "usage: gisc [options] <input-file>   (see header comment "
               "or README)\n";
}

bool parseMachine(const std::string &Spec, MachineDescription &MD) {
  if (Spec == "rs6k") {
    MD = MachineDescription::rs6k();
    return true;
  }
  unsigned FX = 0, FP = 0, BR = 0;
  if (std::sscanf(Spec.c_str(), "%ux%ux%u", &FX, &FP, &BR) == 3 && FX &&
      FP && BR) {
    MD = MachineDescription::superscalar(FX, FP, BR);
    return true;
  }
  return false;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Cli) {
  for (int K = 1; K != Argc; ++K) {
    std::string A = Argv[K];
    auto Next = [&]() -> const char * {
      return K + 1 < Argc ? Argv[++K] : nullptr;
    };
    auto ParsePassToggle = [&](const std::string &Flag, bool On) {
      for (opt::PassId P : opt::passPipeline())
        if (Flag == opt::passInfo(P).Flag) {
          Cli.Pipeline.Opt.force(P, On);
          return true;
        }
      return false;
    };
    if (A == "--asm") {
      Cli.InputIsAsm = true;
    } else if (A == "-O0" || A == "-O1" || A == "-O2") {
      Cli.Pipeline.Opt.Level = static_cast<unsigned>(A[2] - '0');
    } else if (A.rfind("--opt-", 0) == 0) {
      if (!ParsePassToggle(A.substr(6), true))
        return false;
    } else if (A.rfind("--no-opt-", 0) == 0) {
      if (!ParsePassToggle(A.substr(9), false))
        return false;
    } else if (A == "--list-passes") {
      Cli.ListPasses = true;
    } else if (A == "--level") {
      const char *V = Next();
      if (!V)
        return false;
      if (std::strcmp(V, "none") == 0)
        Cli.Pipeline.Level = SchedLevel::None;
      else if (std::strcmp(V, "useful") == 0)
        Cli.Pipeline.Level = SchedLevel::Useful;
      else if (std::strcmp(V, "spec") == 0)
        Cli.Pipeline.Level = SchedLevel::Speculative;
      else
        return false;
    } else if (A == "--spec-depth") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.Pipeline.MaxSpecDepth = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--order") {
      const char *V = Next();
      if (!V)
        return false;
      if (std::strcmp(V, "paper") == 0)
        Cli.Pipeline.Order = PriorityOrder::Paper;
      else if (std::strcmp(V, "d") == 0)
        Cli.Pipeline.Order = PriorityOrder::DelayFirst;
      else if (std::strcmp(V, "cp") == 0)
        Cli.Pipeline.Order = PriorityOrder::CriticalFirst;
      else if (std::strcmp(V, "source") == 0)
        Cli.Pipeline.Order = PriorityOrder::SourceOrder;
      else
        return false;
    } else if (A == "--no-unroll") {
      Cli.Pipeline.EnableUnroll = false;
    } else if (A == "--no-rotate") {
      Cli.Pipeline.EnableRotate = false;
    } else if (A == "--no-local") {
      Cli.Pipeline.RunLocalScheduler = false;
    } else if (A == "--no-renaming") {
      Cli.Pipeline.EnableRenaming = false;
    } else if (A == "--no-prerename") {
      Cli.Pipeline.EnablePreRenaming = false;
    } else if (A == "--all-levels") {
      Cli.Pipeline.OnlyTwoInnerLevels = false;
    } else if (A == "--duplication") {
      Cli.Pipeline.AllowDuplication = true;
    } else if (A == "--superblocks") {
      Cli.Pipeline.EnableSuperblocks = true;
    } else if (A == "--trace-max-blocks") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.Pipeline.TraceMaxBlocks = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--trace-dup-budget") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.Pipeline.TraceDupBudget = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--predictor") {
      const char *V = Next();
      if (!V)
        return false;
      if (std::strcmp(V, "none") == 0)
        Cli.Predictor.Kind = PredictorKind::None;
      else if (std::strcmp(V, "taken") == 0)
        Cli.Predictor.Kind = PredictorKind::AlwaysTaken;
      else if (std::strcmp(V, "bimodal") == 0)
        Cli.Predictor.Kind = PredictorKind::Bimodal2Bit;
      else if (std::strcmp(V, "oracle") == 0)
        Cli.Predictor.Kind = PredictorKind::ProfileOracle;
      else
        return false;
    } else if (A == "--mispredict-penalty") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.Predictor.MispredictPenalty = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--machine") {
      const char *V = Next();
      if (!V || !parseMachine(V, Cli.Machine))
        return false;
    } else if (A == "--regs-gpr" || A == "--regs-fpr" || A == "--regs-cr") {
      const char *V = Next();
      if (!V)
        return false;
      int N = std::atoi(V);
      if (N < 0)
        return false;
      Cli.RegsOverride[A == "--regs-gpr" ? 0 : A == "--regs-fpr" ? 1 : 2] = N;
    } else if (A == "--list-machines") {
      Cli.ListMachines = true;
    } else if (A == "--regalloc") {
      Cli.Pipeline.AllocateRegisters = true;
    } else if (A == "--no-postalloc-resched") {
      Cli.Pipeline.RescheduleAfterAlloc = false;
    } else if (A == "--dump-ir-before") {
      Cli.DumpIRBefore = true;
    } else if (A == "--dump-ir") {
      Cli.DumpIR = true;
    } else if (A == "--dump-cfg") {
      Cli.DumpCFG = true;
    } else if (A == "--dump-cspdg") {
      Cli.DumpCSPDG = true;
    } else if (A == "--dump-ddg") {
      Cli.DumpDDG = true;
    } else if (A == "--stats") {
      Cli.Stats = true;
    } else if (A == "--report") {
      Cli.Report = true;
    } else if (A == "--run") {
      Cli.Run = true;
    } else if (A.rfind("--run=", 0) == 0) {
      Cli.Run = true;
      Cli.Entry = A.substr(6);
    } else if (A == "--arg") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.Args.push_back(std::atoll(V));
    } else if (A == "--cycles") {
      Cli.Cycles = true;
    } else if (A == "--profile") {
      Cli.Profile = true;
    } else if (A == "--jobs") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.Jobs = static_cast<unsigned>(std::atoi(V));
      Cli.EngineRequested = true;
    } else if (A == "--region-jobs") {
      // Intra-function parallelism; does not imply the engine path.
      const char *V = Next();
      if (!V)
        return false;
      Cli.Pipeline.RegionJobs = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--batch") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.BatchFiles.push_back(V);
      Cli.EngineRequested = true;
    } else if (A == "--no-cache") {
      Cli.UseCache = false;
    } else if (A == "--no-incremental") {
      // Recompute-from-scratch slow path; output is bit-identical to the
      // default incremental fast path (tests/coldpath_test.cpp).
      Cli.Pipeline.Incremental = false;
    } else if (A == "--cache-dir") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.CacheDir = V;
      Cli.EngineRequested = true; // the disk tier lives in the engine
    } else if (A == "--cache-dir-max-mb") {
      const char *V = Next();
      if (!V)
        return false;
      long long N = std::atoll(V);
      if (N < 0)
        return false;
      Cli.CacheDirMaxMb = static_cast<uint64_t>(N);
    } else if (A == "--serve") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.ServePath = V;
    } else if (A == "--client") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.ClientPath = V;
    } else if (A == "--serve-workers") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.ServeWorkers = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--serve-queue") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.ServeQueue = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--deadline-ms") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.DeadlineMs = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--retries") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.Retries = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--trace-json") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.TraceJsonPath = V;
    } else if (A == "--stats-json") {
      const char *V = Next();
      if (!V)
        return false;
      Cli.StatsJsonPath = V;
    } else if (A == "--explain") {
      Cli.Explain = true;
      Cli.Pipeline.CollectDecisions = true;
    } else if (A == "--no-counters") {
      Cli.Pipeline.CollectCounters = false;
    } else if (!A.empty() && A[0] == '-') {
      std::cerr << "gisc: unknown option " << A << "\n";
      return false;
    } else {
      Cli.InputPaths.push_back(A);
    }
  }
  for (unsigned C = 0; C != 3; ++C)
    if (Cli.RegsOverride[C] >= 0)
      Cli.Machine.setNumRegs(static_cast<RegClass>(C),
                             static_cast<unsigned>(Cli.RegsOverride[C]));
  return Cli.ListMachines || Cli.ListPasses || !Cli.ServePath.empty() ||
         !Cli.InputPaths.empty() || !Cli.BatchFiles.empty();
}

/// Appends the paths listed in manifest \p Path (one per line; blank lines
/// and '#' comments skipped) to \p Out.
bool readBatchManifest(const std::string &Path,
                       std::vector<std::string> &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "gisc: cannot open batch manifest " << Path << "\n";
    return false;
  }
  std::string Line;
  while (std::getline(In, Line)) {
    size_t Begin = Line.find_first_not_of(" \t\r");
    if (Begin == std::string::npos || Line[Begin] == '#')
      continue;
    size_t End = Line.find_last_not_of(" \t\r");
    Out.push_back(Line.substr(Begin, End - Begin + 1));
  }
  return true;
}

/// Loads one input file as mini-C or GIS assembly.
std::unique_ptr<Module> loadInput(const std::string &Path, bool IsAsm) {
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "gisc: cannot open " << Path << "\n";
    return nullptr;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Source = SS.str();

  if (IsAsm) {
    ParseResult R = parseModule(Source);
    if (!R.ok()) {
      std::cerr << Path << ":" << R.Line << ": error: " << R.Error << "\n";
      return nullptr;
    }
    std::vector<std::string> Problems = verifyModule(*R.M);
    for (const std::string &P : Problems)
      std::cerr << Path << ": verify: " << P << "\n";
    if (!Problems.empty())
      return nullptr;
    return std::move(R.M);
  }
  CompileResult R = compileMiniC(Source);
  if (!R.ok()) {
    std::cerr << Path << ":" << R.Line << ": error: " << R.Error << "\n";
    return nullptr;
  }
  return std::move(R.M);
}

/// Dumps the per-region DOT graphs of every function.
void dumpRegions(const Module &M, const MachineDescription &MD, bool CSPDG,
                 bool DDG) {
  for (const auto &F : M.functions()) {
    LoopInfo LI = LoopInfo::compute(*F);
    if (!LI.isReducible()) {
      std::cerr << "gisc: " << F->name()
                << ": irreducible control flow, no region dumps\n";
      continue;
    }
    std::vector<int> Regions;
    for (unsigned L = 0; L != LI.numLoops(); ++L)
      Regions.push_back(static_cast<int>(L));
    Regions.push_back(-1);
    for (int RId : Regions) {
      SchedRegion R = SchedRegion::build(*F, LI, RId);
      PDG P = PDG::build(*F, R, MD);
      std::cout << "// function " << F->name() << ", region "
                << (RId < 0 ? std::string("top") : std::to_string(RId))
                << "\n";
      if (CSPDG)
        std::cout << cspdgToDot(*F, P);
      if (DDG)
        std::cout << ddgToDot(*F, P);
    }
  }
}

/// Finishes a --trace-json run: stop the tracer and write the file.
/// Returns false (and reports) when the file cannot be written.
bool exportTraceJson(const CliOptions &Cli) {
  if (Cli.TraceJsonPath.empty())
    return true;
  obs::Tracer &Tr = obs::Tracer::instance();
  Tr.disable();
  std::ofstream Out(Cli.TraceJsonPath);
  if (!Out) {
    std::cerr << "gisc: cannot write trace to " << Cli.TraceJsonPath
              << "\n";
    return false;
  }
  Tr.exportChromeJson(Out);
  return true;
}

/// The obs counter registry, one stable key per line (under --stats).
void printCounters(const obs::CounterSet &C) {
  std::cout << "  counters:\n";
  for (unsigned K = 0; K != obs::NumCounters; ++K) {
    auto Id = static_cast<obs::CounterId>(K);
    std::cout << "    " << obs::counterKey(Id) << " = " << C.get(Id)
              << "\n";
  }
}

/// One line of `--list-machines`: name, unit types with counts, and the
/// register files the allocator targets.
void printMachineLine(const MachineDescription &MD) {
  std::cout << "  " << MD.name() << ": units";
  for (unsigned T = 0; T != MD.numUnitTypes(); ++T)
    std::cout << (T ? ", " : " ") << MD.unitType(T).Count << "x"
              << MD.unitType(T).Name;
  std::cout << "; registers " << MD.numRegs(RegClass::GPR) << " GPR, "
            << MD.numRegs(RegClass::FPR) << " FPR, "
            << MD.numRegs(RegClass::CR) << " CR\n";
}

int listMachines() {
  std::cout << "built-in machines (--machine):\n";
  printMachineLine(MachineDescription::rs6k());
  printMachineLine(MachineDescription::superscalar(2, 1, 1));
  printMachineLine(MachineDescription::superscalar(4, 2, 2));
  std::cout << "  (any FXxFPxBR triple is accepted, e.g. --machine 6x2x2;\n"
               "   --regs-gpr/--regs-fpr/--regs-cr override the register "
               "files)\n";
  return 0;
}

/// One line of `--list-passes` per pass, in pipeline order (the order the
/// pass manager runs them), mirroring --list-machines.
int listPasses() {
  std::cout << "optimizer passes (pipeline order; -O0 runs none):\n";
  for (opt::PassId P : opt::passPipeline()) {
    const opt::PassInfo &Info = opt::passInfo(P);
    std::cout << "  " << Info.Name << ": " << Info.Description
              << "\n    enabled at -O" << Info.MinLevel
              << " and above; force with --opt-" << Info.Flag
              << " / --no-opt-" << Info.Flag << "\n";
  }
  std::cout << "  (every pass runs under the same checkpoint/verify/"
               "rollback transaction\n   as the scheduler's transforms; "
               "see --stats opt lines)\n";
  return 0;
}

/// The `--stats` optimizer lines shared by the single-file and engine
/// paths; silent when no pass was enabled.
void printOptStats(const PipelineStats &Stats, const PipelineOptions &Opts) {
  if (!Opts.Opt.anyEnabled())
    return;
  std::cout << "  optimizer: " << Stats.Opt.PassesRun
            << " pass run(s); peephole " << Stats.Opt.PeepholeRewrites
            << ", strength " << Stats.Opt.StrengthReduced << ", gvn "
            << Stats.Opt.ValuesNumbered << ", dce " << Stats.Opt.DeadRemoved
            << "\n";
}

/// The `--stats` lines shared by the single-file and engine paths:
/// scheduled-code pressure peaks and, with --regalloc, allocation totals.
void printPressureAndRegAlloc(const PipelineStats &Stats, bool Allocated) {
  std::cout << "  peak pressure GPR/FPR/CR: " << Stats.PressurePeak[0] << "/"
            << Stats.PressurePeak[1] << "/" << Stats.PressurePeak[2] << "\n";
  if (!Allocated)
    return;
  std::cout << "  regalloc: " << Stats.RegAlloc.IntervalsBuilt
            << " intervals, " << Stats.RegAlloc.IntervalsSpilled
            << " spilled (" << Stats.RegAlloc.SpillSlots << " slots, "
            << Stats.RegAlloc.SpillStores << " stores, "
            << Stats.RegAlloc.SpillReloads << " reloads), "
            << Stats.RegAllocFailures << " failures\n";
}

} // namespace

/// The engine path: several inputs and/or a worker pool, deterministic
/// input-order output.  Supports the inspection options; execution and
/// reporting options need the single-file path.
int runEngineMode(const CliOptions &Cli,
                  const std::vector<std::string> &Paths) {
  if (Cli.Run || Cli.Profile || Cli.Report) {
    std::cerr << "gisc: --run/--profile/--report need a single input "
                 "without --jobs/--batch\n";
    return 2;
  }

  std::vector<std::unique_ptr<Module>> Modules;
  for (const std::string &Path : Paths) {
    std::unique_ptr<Module> M = loadInput(Path, Cli.InputIsAsm);
    if (!M)
      return 1;
    if (Cli.DumpIRBefore) {
      std::cout << "// file: " << Path << " (before scheduling)\n";
      printModule(*M, std::cout);
    }
    Modules.push_back(std::move(M));
  }

  EngineOptions EOpts;
  EOpts.Jobs = Cli.Jobs;
  EOpts.UseCache = Cli.UseCache;
  EOpts.CacheDir = Cli.CacheDir; // validated at startup (exit code 3)
  EOpts.CacheDirMaxBytes = Cli.CacheDirMaxMb * 1024 * 1024;
  CompileEngine Engine(Cli.Machine, Cli.Pipeline, EOpts);

  std::vector<BatchItem> Batch;
  for (size_t K = 0; K != Modules.size(); ++K)
    Batch.push_back(BatchItem{Modules[K].get(), Paths[K]});
  if (!Cli.TraceJsonPath.empty())
    obs::Tracer::instance().enable();
  EngineReport Report = Engine.compileBatch(Batch);
  if (!exportTraceJson(Cli))
    return 1;

  for (size_t K = 0; K != Modules.size(); ++K) {
    const Module &M = *Modules[K];
    if (Cli.DumpIR) {
      std::cout << "// file: " << Paths[K] << "\n";
      printModule(M, std::cout);
    }
    if (Cli.DumpCFG)
      for (const auto &F : M.functions())
        std::cout << cfgToDot(*F);
    if (Cli.DumpCSPDG || Cli.DumpDDG)
      dumpRegions(M, Cli.Machine, Cli.DumpCSPDG, Cli.DumpDDG);
  }

  if (Cli.Explain)
    obs::renderDecisions(Report.Aggregate.Decisions, std::cout);

  if (Cli.Stats) {
    std::cout << Report.summary();
    for (const FunctionCompileResult &R : Report.PerFunction)
      std::cout << "  " << R.Item << ":" << R.Function
                << (R.CacheHit ? "  [cache hit]" : "") << "  "
                << static_cast<long>(R.CompileSeconds * 1e6) << "us\n";
    for (const Diagnostic &D : Report.Aggregate.Diags)
      std::cout << "  diagnostic: " << D.str() << "\n";
    printOptStats(Report.Aggregate, Cli.Pipeline);
    printPressureAndRegAlloc(Report.Aggregate,
                             Cli.Pipeline.AllocateRegisters);
    if (Cli.Pipeline.CollectCounters)
      printCounters(Report.Aggregate.Counters);
  }

  if (!Cli.StatsJsonPath.empty()) {
    std::ofstream Out(Cli.StatsJsonPath);
    if (!Out) {
      std::cerr << "gisc: cannot write stats to " << Cli.StatsJsonPath
                << "\n";
      return 1;
    }
    obs::writeEngineReportJson(Out, Report);
  }
  return 0;
}

namespace {

/// SIGTERM/SIGINT latch for --serve; the main loop polls it and drains.
volatile std::sig_atomic_t GServeSignal = 0;
void onServeSignal(int) { GServeSignal = 1; }

/// The compile daemon (persist/Server.h).  Runs until SIGTERM/SIGINT,
/// then drains the admission queue and exits.
int runServeMode(const CliOptions &Cli) {
  persist::ServerOptions SO;
  SO.SocketPath = Cli.ServePath;
  SO.Workers = Cli.ServeWorkers;
  SO.QueueDepth = Cli.ServeQueue;
  SO.DefaultDeadlineMs = Cli.DeadlineMs;
  SO.CacheDir = Cli.CacheDir;
  SO.CacheDirMaxBytes = Cli.CacheDirMaxMb * 1024 * 1024;
  persist::CompileServer Server(Cli.Machine, Cli.Pipeline, SO);
  if (Status S = Server.start(); !S.isOk()) {
    std::cerr << "gisc: --serve: " << S.str() << "\n";
    return 1;
  }
  std::signal(SIGTERM, onServeSignal);
  std::signal(SIGINT, onServeSignal);
  std::cerr << "gisc: serving on " << Cli.ServePath << " ("
            << Cli.ServeWorkers << " worker(s), queue bound "
            << Cli.ServeQueue << ")\n";
  while (!GServeSignal)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::cerr << "gisc: draining...\n";
  Server.drainAndJoin();
  persist::ServerStats S = Server.stats();
  std::cerr << "gisc: served " << S.Completed << " request(s), shed "
            << S.Shed << ", timed out " << S.TimedOut << ", errors "
            << S.Errors << "\n";
  return 0;
}

/// --client: ship each input to the daemon; scheduled modules go to
/// stdout in input order, exactly as --dump-ir would print them.
int runClientMode(const CliOptions &Cli,
                  const std::vector<std::string> &Paths) {
  persist::ClientOptions CO;
  CO.SocketPath = Cli.ClientPath;
  CO.Retries = Cli.Retries;
  for (const std::string &Path : Paths) {
    std::ifstream In(Path);
    if (!In) {
      std::cerr << "gisc: cannot open " << Path << "\n";
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();

    persist::CompileRequest Req;
    Req.IsAsm = Cli.InputIsAsm;
    Req.DeadlineMs = Cli.DeadlineMs;
    Req.Name = Path;
    for (char &C : Req.Name) // the wire header is space-delimited
      if (C == ' ' || C == '\t')
        C = '_';
    Req.Source = SS.str();

    persist::CompileResponse R = persist::compileOverSocket(CO, Req);
    switch (R.Kind) {
    case persist::ResponseKind::Ok:
      std::cout << "// file: " << Path << "\n" << R.Text;
      if (Cli.Stats)
        std::cerr << "gisc: " << Path << ": mem hits " << R.MemHits
                  << ", disk hits " << R.DiskHits << ", misses "
                  << R.Misses << " (" << R.Attempts << " attempt(s))\n";
      break;
    case persist::ResponseKind::Shed:
      std::cerr << "gisc: " << Path << ": daemon overloaded after "
                << R.Attempts << " attempt(s)\n";
      return 1;
    case persist::ResponseKind::Timeout:
      std::cerr << "gisc: " << Path << ": " << R.Text << "\n";
      return 1;
    case persist::ResponseKind::Error:
      std::cerr << "gisc: " << Path << ": daemon error: " << R.Text
                << "\n";
      return 1;
    case persist::ResponseKind::ConnectFailed:
      std::cerr << "gisc: cannot reach daemon at " << Cli.ClientPath
                << " after " << (Cli.Retries + 1) << " attempt(s)\n";
      return 1;
    case persist::ResponseKind::ProtocolError:
      std::cerr << "gisc: " << Path << ": protocol error: " << R.Text
                << "\n";
      return 1;
    }
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  CliOptions Cli;
  if (!parseArgs(argc, argv, Cli)) {
    usage();
    return 2;
  }
  if (Cli.ListMachines)
    return listMachines();
  if (Cli.ListPasses)
    return listPasses();

  // Validate --cache-dir up front with a distinct exit code: a typo'd or
  // unwritable directory is a configuration error the caller should see
  // immediately, not a silently memory-only run.
  if (!Cli.CacheDir.empty()) {
    Status S = persist::ensureDir(Cli.CacheDir);
    if (S.isOk())
      S = persist::probeWritable(Cli.CacheDir);
    if (!S.isOk()) {
      std::cerr << "gisc: cache directory unusable: " << S.str() << "\n";
      return 3;
    }
  }

  if (!Cli.ServePath.empty())
    return runServeMode(Cli);

  std::vector<std::string> Paths = Cli.InputPaths;
  for (const std::string &Manifest : Cli.BatchFiles)
    if (!readBatchManifest(Manifest, Paths))
      return 1;
  if (Paths.empty()) {
    std::cerr << "gisc: no input files\n";
    return 2;
  }

  if (!Cli.ClientPath.empty())
    return runClientMode(Cli, Paths);

  if (Cli.EngineRequested || Paths.size() > 1)
    return runEngineMode(Cli, Paths);

  std::unique_ptr<Module> M = loadInput(Paths.front(), Cli.InputIsAsm);
  if (!M)
    return 1;

  if (Cli.DumpIRBefore)
    printModule(*M, std::cout);

  // Profile-guided mode: run the entry once on the unscheduled code and
  // hand the block frequencies to the scheduler.
  ProfileData Profile;
  if (Cli.Profile) {
    Function *Entry = M->findFunction(Cli.Entry);
    if (!Entry || Entry->params().size() != Cli.Args.size()) {
      std::cerr << "gisc: --profile needs a runnable entry (--run/--arg)\n";
      return 1;
    }
    Interpreter I(*M);
    for (size_t K = 0; K != Cli.Args.size(); ++K)
      I.setReg(Entry->params()[K], Cli.Args[K]);
    ExecResult R = I.run(*Entry);
    if (R.Trapped) {
      std::cerr << "gisc: profiling run trapped: " << R.TrapReason << "\n";
      return 1;
    }
    Profile.record(*Entry, I.blockCounts());
    Profile.recordEdges(*Entry, I.edgeCounts());
    Cli.Pipeline.Profile = &Profile;
  }

  ScheduleReport Rep;
  PipelineStats Stats;
  if (!Cli.TraceJsonPath.empty())
    obs::Tracer::instance().enable();
  if (Cli.Report) {
    Rep = scheduleWithReport(*M, Cli.Machine, Cli.Pipeline);
    Stats = Rep.Stats;
    printReport(Rep, std::cout);
  } else {
    Stats = scheduleModule(*M, Cli.Machine, Cli.Pipeline);
  }
  if (!exportTraceJson(Cli))
    return 1;
  if (Cli.Explain)
    obs::renderDecisions(Stats.Decisions, std::cout);

  if (Cli.DumpIR)
    printModule(*M, std::cout);
  if (Cli.DumpCFG)
    for (const auto &F : M->functions())
      std::cout << cfgToDot(*F);
  if (Cli.DumpCSPDG || Cli.DumpDDG)
    dumpRegions(*M, Cli.Machine, Cli.DumpCSPDG, Cli.DumpDDG);

  if (Cli.Stats) {
    std::cout << "scheduling statistics:\n"
              << "  regions scheduled:    " << Stats.Global.RegionsScheduled
              << "\n  useful motions:       " << Stats.Global.UsefulMotions
              << "\n  speculative motions:  "
              << Stats.Global.SpeculativeMotions
              << "\n  vetoed speculations:  "
              << Stats.Global.VetoedSpeculations
              << "\n  register renames:     " << Stats.Global.Renames
              << "\n  pre-renamed defs:     " << Stats.PreRenamedDefs
              << "\n  duplicated instrs:    " << Stats.DuplicatedInstrs
              << "\n  loops unrolled:       " << Stats.LoopsUnrolled
              << "\n  loops rotated:        " << Stats.LoopsRotated
              << "\n  regions over size cap: "
              << Stats.RegionsSkippedBySize
              << "\n  blocks reordered (local): "
              << Stats.Local.BlocksReordered
              << "\n  transactions run:     " << Stats.TransactionsRun
              << "\n  rollbacks (region/transform): "
              << Stats.RegionsRolledBack << "/" << Stats.TransformsRolledBack
              << "\n  faults injected:      " << Stats.FaultsInjected
              << "\n  region waves:         " << Stats.RegionWaves
              << "  (--region-jobs " << Cli.Pipeline.RegionJobs << ")\n";
    if (Cli.Pipeline.EnableSuperblocks)
      std::cout << "  traces formed/truncated: " << Stats.TracesFormed << "/"
                << Stats.TracesTruncated
                << "\n  trace blocks claimed: " << Stats.TraceBlocks
                << "\n  tail-dup instrs/blocks: " << Stats.TailDupInstrs
                << "/" << Stats.TailDupBlocks
                << "\n  superblocks scheduled: "
                << Stats.SuperblocksScheduled << "\n";
    for (const RegionTime &RT : Stats.RegionTimes)
      std::cout << "    wave " << RT.Wave << " region "
                << (RT.LoopIdx < 0 ? std::string("top")
                                   : std::to_string(RT.LoopIdx))
                << ": " << static_cast<long>(RT.Seconds * 1e6) << "us\n";
    for (const Diagnostic &D : Stats.Diags)
      std::cout << "  diagnostic: " << D.str() << "\n";
    printOptStats(Stats, Cli.Pipeline);
    printPressureAndRegAlloc(Stats, Cli.Pipeline.AllocateRegisters);
    if (Cli.Pipeline.CollectCounters)
      printCounters(Stats.Counters);
    for (const auto &F : M->functions()) {
      RegPressure P = computeRegPressure(*F);
      std::cout << "  " << F->name() << ": peak live GPR/FPR/CR = "
                << P.maxLive(RegClass::GPR) << "/"
                << P.maxLive(RegClass::FPR) << "/"
                << P.maxLive(RegClass::CR) << "\n";
    }
  }

  if (!Cli.StatsJsonPath.empty()) {
    std::ofstream Out(Cli.StatsJsonPath);
    if (!Out) {
      std::cerr << "gisc: cannot write stats to " << Cli.StatsJsonPath
                << "\n";
      return 1;
    }
    obs::writePipelineStatsJson(Out, Stats,
                                Cli.Profile ? &Profile : nullptr,
                                Cli.Profile ? M->findFunction(Cli.Entry)
                                            : nullptr);
  }

  if (Cli.Run) {
    Function *Entry = M->findFunction(Cli.Entry);
    if (!Entry) {
      std::cerr << "gisc: no function '" << Cli.Entry << "'\n";
      return 1;
    }
    if (Entry->params().size() != Cli.Args.size()) {
      std::cerr << "gisc: '" << Cli.Entry << "' expects "
                << Entry->params().size() << " arguments, got "
                << Cli.Args.size() << " (--arg)\n";
      return 1;
    }
    Interpreter I(*M);
    I.enableTrace(Cli.Cycles);
    for (size_t K = 0; K != Cli.Args.size(); ++K)
      I.setReg(Entry->params()[K], Cli.Args[K]);
    ExecResult R = I.run(*Entry);
    if (R.Trapped) {
      std::cerr << "gisc: trap: " << R.TrapReason << "\n";
      return 1;
    }
    for (int64_t V : R.Printed)
      std::cout << V << "\n";
    if (R.HasReturnValue)
      std::cout << "return value: " << R.ReturnValue << "\n";
    std::cout << "instructions executed: " << R.InstrCount << "\n";
    if (Cli.Cycles) {
      TimingSimulator Sim(Cli.Machine);
      BranchPredictorOptions POpts = Cli.Predictor;
      // The oracle predictor prices this very run: record its edge
      // profile (block ids match -- same scheduled function) and predict
      // each branch's majority direction.
      ProfileData RunProfile;
      if (POpts.Kind == PredictorKind::ProfileOracle) {
        RunProfile.recordEdges(*Entry, I.edgeCounts());
        POpts.Profile = &RunProfile;
      }
      Sim.setPredictor(POpts);
      TimingResult T = Sim.simulate(I.trace());
      std::cout << "simulated cycles: " << T.Cycles
                << "  (ipc " << T.ipc() << ")\n";
      if (POpts.Kind != PredictorKind::None)
        std::cout << "branches: " << T.Branches
                  << "  mispredicts: " << T.Mispredicts
                  << "  branch stall cycles: " << T.BranchStallCycles
                  << "\n";
    }
  }
  return 0;
}

/* The paper's Figure 1: find the largest and the smallest number in a
   given array (mini-C adaptation; the array is a global, print replaces
   printf).  Compile and run:
     gisc examples/data/minmax_fig1.c --run=minmax --arg 63 --cycles --stats
   (seed the array through a wrapper, or use example_compile_and_schedule
   which loads this program with test data). */
int a[4096];
int minmax(int n) {
  int i;
  int u;
  int v;
  int min = a[0];
  int max = min;
  i = 1;
  while (i < n) {
    u = a[i];
    v = a[i + 1];
    if (u > v) {
      if (u > max) max = u;
      if (v < min) min = v;
    }
    else {
      if (v > max) max = v;
      if (u < min) min = u;
    }
    i = i + 2;
  }
  print(min);
  print(max);
  return 0;
}

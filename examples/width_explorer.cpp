//===- examples/width_explorer.cpp - Machine width exploration -------------===//
//
// Explores the paper's closing conjecture ("we may expect even bigger
// payoffs in machines with a larger number of computational units"):
// sweeps the number of fixed-point units and reports base vs. scheduled
// cycles on the SPEC-shaped workloads.
//
//   $ ./example_width_explorer
//
//===----------------------------------------------------------------------===//

#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "machine/Timing.h"
#include "sched/Pipeline.h"
#include "support/Format.h"
#include "workloads/Workloads.h"

#include <iostream>

using namespace gis;

namespace {

uint64_t measureCycles(const Workload &W, const MachineDescription &MD,
                       bool Schedule) {
  auto M = compileMiniCOrDie(W.Source);
  if (Schedule) {
    PipelineOptions Opts;
    scheduleModule(*M, MD, Opts);
  }
  Interpreter I(*M);
  I.enableTrace(true);
  if (W.Setup)
    W.Setup(I, *M);
  Function *Entry = M->findFunction(W.EntryFunction);
  for (size_t K = 0; K != W.Args.size(); ++K)
    I.setReg(Entry->params()[K], W.Args[K]);
  ExecResult R = I.run(*Entry, W.MaxSteps);
  if (R.Trapped) {
    std::cerr << W.Name << ": trap: " << R.TrapReason << "\n";
    return 0;
  }
  TimingSimulator Sim(MD);
  return Sim.simulate(I.trace()).Cycles;
}

} // namespace

int main() {
  std::cout << "Run-time improvement of global scheduling vs. machine "
               "width\n";
  std::cout << "(fixed-point units swept 1..4; 1 float and 2 branch "
               "units)\n\n";
  std::cout << padRight("PROGRAM", 10);
  for (unsigned Width = 1; Width <= 4; ++Width)
    std::cout << padLeft(formatString("fx=%u", Width), 10);
  std::cout << "\n";

  for (const Workload &W : specLikeWorkloads()) {
    std::cout << padRight(W.Name, 10);
    for (unsigned Width = 1; Width <= 4; ++Width) {
      MachineDescription MD =
          MachineDescription::superscalar(Width, 1, 2);
      uint64_t Base = measureCycles(W, MD, /*Schedule=*/false);
      uint64_t Sched = measureCycles(W, MD, /*Schedule=*/true);
      double RTI =
          Base ? 100.0 * (1.0 - double(Sched) / double(Base)) : 0.0;
      std::cout << padLeft(formatString("%+.1f%%", RTI), 10);
    }
    std::cout << "\n";
  }
  std::cout << "\n(each cell: run-time improvement of the full scheduling "
               "pipeline over the local-only baseline)\n";
  return 0;
}

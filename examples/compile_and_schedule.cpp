//===- examples/compile_and_schedule.cpp - Mini-C end-to-end ---------------===//
//
// Drives the whole tool chain on mini-C source: compile, schedule with the
// paper's pipeline, print before/after IR, and compare simulated cycles.
// Reads a file name from argv, or uses the paper's Figure 1 program.
//
//   $ ./example_compile_and_schedule [source.c]
//
//===----------------------------------------------------------------------===//

#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "machine/Timing.h"
#include "sched/Pipeline.h"
#include "workloads/Workloads.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace gis;

int main(int argc, char **argv) {
  std::string Source;
  std::string EntryName;
  if (argc > 1) {
    std::ifstream In(argv[1]);
    if (!In) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
    EntryName = "main";
  } else {
    Source = minmaxFigure1Source();
    EntryName = "minmax";
  }

  CompileResult Compiled = compileMiniC(Source);
  if (!Compiled.ok()) {
    std::cerr << "compile error at line " << Compiled.Line << ": "
              << Compiled.Error << "\n";
    return 1;
  }
  Module &M = *Compiled.M;
  Function *Entry = M.findFunction(EntryName);
  if (!Entry) {
    std::cerr << "no function '" << EntryName << "'\n";
    return 1;
  }

  std::cout << "=== generated IR ===\n";
  printModule(M, std::cout);

  // Run before scheduling.
  auto Measure = [&](Module &Mod) -> std::pair<uint64_t, std::vector<int64_t>> {
    Interpreter I(Mod);
    I.enableTrace(true);
    if (EntryName == "minmax") {
      // Seed the Figure 1 array: 4096-element global 'a'.
      int64_t Base = Mod.globals()[0].Address;
      for (int K = 0; K != 256; ++K)
        I.storeWord(Base + 4 * K, (K * 37) % 101 - 50);
      Function *E = Mod.findFunction(EntryName);
      I.setReg(E->params()[0], 255);
    }
    ExecResult R = I.run(*Mod.findFunction(EntryName));
    if (R.Trapped) {
      std::cerr << "trap: " << R.TrapReason << "\n";
      return {0, {}};
    }
    TimingSimulator Sim(MachineDescription::rs6k());
    return {Sim.simulate(I.trace()).Cycles, R.Printed};
  };

  auto [BaseCycles, BasePrinted] = Measure(M);

  PipelineOptions Opts;
  PipelineStats Stats = scheduleModule(M, MachineDescription::rs6k(), Opts);

  std::cout << "\n=== scheduled IR ===\n";
  printModule(M, std::cout);

  auto [SchedCycles, SchedPrinted] = Measure(M);

  std::cout << "\n=== summary ===\n";
  std::cout << "useful/speculative motions: " << Stats.Global.UsefulMotions
            << "/" << Stats.Global.SpeculativeMotions << "\n";
  std::cout << "unrolled/rotated loops:     " << Stats.LoopsUnrolled << "/"
            << Stats.LoopsRotated << "\n";
  std::cout << "cycles: " << BaseCycles << " -> " << SchedCycles;
  if (BaseCycles)
    std::cout << "  (" << (100.0 * (1.0 - double(SchedCycles) /
                                              double(BaseCycles)))
              << "% faster)";
  std::cout << "\n";
  if (BasePrinted != SchedPrinted) {
    std::cerr << "ERROR: outputs differ after scheduling!\n";
    return 1;
  }
  std::cout << "outputs identical before/after scheduling";
  if (!BasePrinted.empty()) {
    std::cout << ":";
    for (int64_t V : BasePrinted)
      std::cout << " " << V;
  }
  std::cout << "\n";
  return 0;
}

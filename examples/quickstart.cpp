//===- examples/quickstart.cpp - GIS in five minutes -----------------------===//
//
// Quickstart for the GIS library: assemble a small program, build its PDG,
// run the global scheduler, and measure the speedup on the simulated
// RS/6000.
//
//   $ ./example_quickstart
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "analysis/PDG.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "machine/Timing.h"
#include "sched/Pipeline.h"

#include <iostream>

using namespace gis;

int main() {
  // 1. A program in GIS assembly: a loop that sums an array, with an
  //    if inside (small basic blocks, the paper's problem setting).
  //    You can also build IR with gis::IRBuilder or compile mini-C with
  //    gis::compileMiniC.
  const char *Source = R"(
func abssum {
PRE:
  LI r1 = 1000       ; array base
  LI r2 = 0          ; i
  LI r3 = 0          ; acc
LOOP:
  LU r4, r1 = mem[r1 + 4]
  CI cr0 = r4, 0
  BF NEG_, cr0, lt
POS:
  A r3 = r3, r4
  B NEXT
NEG_:
  S r3 = r3, r4
NEXT:
  AI r2 = r2, 1
  C cr1 = r2, r9
  BT LOOP, cr1, lt
DONE:
  RET r3
}
)";
  std::unique_ptr<Module> M = parseModuleOrDie(Source);
  Function &F = *M->functions()[0];

  std::cout << "=== original program ===\n";
  printFunction(F, std::cout);

  // 2. Inspect the PDG of the loop region (control dependences,
  //    equivalence classes, data dependences).
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion Region = SchedRegion::build(F, LI, 0);
  MachineDescription MD = MachineDescription::rs6k();
  PDG P = PDG::build(F, Region, MD);
  std::cout << "\n=== PDG of the loop ===\n";
  P.print(F, std::cout);

  // 3. Measure the original code: interpret (collecting a trace), then
  //    feed the trace to the cycle-accurate machine model.
  auto MeasureCycles = [&](const Module &Mod) {
    Interpreter I(Mod);
    I.enableTrace(true);
    for (int K = 1; K <= 64; ++K)
      I.storeWord(1000 + 4 * K, (K % 3 == 0) ? -K : K);
    I.setReg(Reg::gpr(9), 64);
    ExecResult R = I.run(*Mod.functions()[0]);
    if (R.Trapped) {
      std::cerr << "trap: " << R.TrapReason << "\n";
      return std::pair<uint64_t, int64_t>{0, 0};
    }
    TimingSimulator Sim(MD);
    return std::pair<uint64_t, int64_t>{Sim.simulate(I.trace()).Cycles,
                                        R.ReturnValue};
  };
  auto [BaseCycles, BaseValue] = MeasureCycles(*M);

  // 4. Run the paper's full scheduling pipeline: unroll, global
  //    scheduling (useful + 1-branch speculative), rotation, second
  //    pass, basic-block scheduling.
  PipelineOptions Opts;
  PipelineStats Stats = schedulePipeline(F, MD, Opts);

  std::cout << "\n=== scheduled program ===\n";
  printFunction(F, std::cout);

  auto [SchedCycles, SchedValue] = MeasureCycles(*M);

  std::cout << "\n=== results ===\n";
  std::cout << "useful motions:       " << Stats.Global.UsefulMotions << "\n";
  std::cout << "speculative motions:  " << Stats.Global.SpeculativeMotions
            << "\n";
  std::cout << "register renames:     " << Stats.Global.Renames << "\n";
  std::cout << "loops unrolled:       " << Stats.LoopsUnrolled << "\n";
  std::cout << "loops rotated:        " << Stats.LoopsRotated << "\n";
  std::cout << "result (must match):  " << BaseValue << " -> " << SchedValue
            << "\n";
  std::cout << "cycles:               " << BaseCycles << " -> " << SchedCycles
            << "\n";
  if (SchedValue != BaseValue) {
    std::cerr << "ERROR: scheduling changed the program result!\n";
    return 1;
  }
  return 0;
}

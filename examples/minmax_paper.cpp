//===- examples/minmax_paper.cpp - The paper's running example -------------===//
//
// Regenerates the paper's Figures 2-6 from its running example:
//
//   - Figure 1/2: the minmax program and its RS/6000 pseudo-code;
//   - Figure 3:   the control flow graph of the loop;
//   - Figure 4:   the control subgraph of the PDG (CSPDG) with the
//                 equivalence classes;
//   - Figure 5:   the result of useful-only global scheduling
//                 (12-13 cycles/iteration, down from 20-22);
//   - Figure 6:   useful + 1-branch speculative scheduling with the
//                 register rename (11-12 cycles/iteration).
//
//   $ ./example_minmax_paper
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "analysis/PDG.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "machine/Timing.h"
#include "sched/GlobalScheduler.h"
#include "workloads/Workloads.h"

#include <iostream>

using namespace gis;

namespace {

/// Steady-state cycles per loop iteration for a given number of min/max
/// updates per iteration.
double cyclesPerIteration(const Module &M, int Updates) {
  const Function &F = *M.functions()[0];
  Interpreter I(M);
  I.enableTrace(true);
  seedMinmaxData(I, 130, Updates);
  ExecResult R = I.run(F);
  if (R.Trapped) {
    std::cerr << "trap: " << R.TrapReason << "\n";
    return 0;
  }
  TimingSimulator Sim(MachineDescription::rs6k());
  Sim.recordIssueTimes(true);
  TimingResult T = Sim.simulate(I.trace());
  std::vector<size_t> Markers;
  for (size_t K = 0; K != I.trace().size(); ++K)
    if (F.instr(I.trace()[K].Instr).opcode() == Opcode::BT)
      Markers.push_back(K);
  return steadyStatePeriod(T.IssueTimes, Markers);
}

void reportCycles(const char *What, const Module &M) {
  std::cout << What << ": " << cyclesPerIteration(M, 0) << " / "
            << cyclesPerIteration(M, 1) << " / " << cyclesPerIteration(M, 2)
            << " cycles per iteration (0 / 1 / 2 updates)\n";
}

} // namespace

int main() {
  MachineDescription MD = MachineDescription::rs6k();

  std::cout << "=== Figure 2: the original minmax loop ===\n";
  auto Fig2 = minmaxFigure2Module();
  printFunction(*Fig2->functions()[0], std::cout);

  // Figures 3 and 4: CFG and CSPDG of the loop.
  {
    Function &F = *Fig2->functions()[0];
    std::cout << "\n=== Figure 3: control flow graph of the loop ===\n";
    for (BlockId B : F.layout()) {
      const BasicBlock &BB = F.block(B);
      std::cout << "  " << BB.label() << " ->";
      for (BlockId S : BB.succs())
        std::cout << " " << F.block(S).label();
      std::cout << "\n";
    }

    std::cout << "\n=== Figure 4: CSPDG and equivalence classes ===\n";
    LoopInfo LI = LoopInfo::compute(F);
    SchedRegion R = SchedRegion::build(F, LI, 0);
    PDG P = PDG::build(F, R, MD);
    P.print(F, std::cout);
  }

  reportCycles("\noriginal (paper: 20/21/22)", *Fig2);

  std::cout << "\n=== Figure 5: useful-only global scheduling ===\n";
  auto Fig5 = minmaxFigure2Module();
  {
    Function &F = *Fig5->functions()[0];
    LoopInfo LI = LoopInfo::compute(F);
    SchedRegion R = SchedRegion::build(F, LI, 0);
    GlobalSchedOptions Opts;
    Opts.Level = SchedLevel::Useful;
    GlobalScheduler GS(MD, Opts);
    GlobalSchedStats S = GS.scheduleRegion(F, R);
    printFunction(F, std::cout);
    std::cout << "useful motions: " << S.UsefulMotions << "\n";
  }
  reportCycles("useful (paper: 12-13)", *Fig5);

  std::cout << "\n=== Figure 6: useful + 1-branch speculative ===\n";
  auto Fig6 = minmaxFigure2Module();
  {
    Function &F = *Fig6->functions()[0];
    LoopInfo LI = LoopInfo::compute(F);
    SchedRegion R = SchedRegion::build(F, LI, 0);
    GlobalSchedOptions Opts;
    Opts.Level = SchedLevel::Speculative;
    GlobalScheduler GS(MD, Opts);
    GlobalSchedStats S = GS.scheduleRegion(F, R);
    printFunction(F, std::cout);
    std::cout << "useful motions: " << S.UsefulMotions
              << ", speculative motions: " << S.SpeculativeMotions
              << ", renames: " << S.Renames << "\n";
  }
  reportCycles("speculative (paper: 11-12)", *Fig6);

  // Sanity: all three versions compute the same min/max.
  for (int Updates : {0, 1, 2}) {
    std::vector<int64_t> Results[3];
    int Idx = 0;
    for (Module *M : {Fig2.get(), Fig5.get(), Fig6.get()}) {
      Interpreter I(*M);
      seedMinmaxData(I, 130, Updates);
      Results[Idx++] = I.run(*M->functions()[0]).Printed;
    }
    if (Results[0] != Results[1] || Results[0] != Results[2]) {
      std::cerr << "ERROR: scheduled versions disagree!\n";
      return 1;
    }
  }
  std::cout << "\nall three versions print identical min/max values\n";
  return 0;
}

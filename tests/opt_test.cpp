//===- tests/opt_test.cpp - Mid-end optimizer tests ------------------------===//
//
// The src/opt/ subsystem: each pass does its documented rewrites and
// nothing else; the pass manager runs every pass under the pipeline's
// checkpoint/verify/rollback transaction; an injected fault in any pass
// is caught and rolled back; random programs survive every -O level
// oracle-clean; and the -O level is provably part of the cache
// fingerprint, so -O0 and -O2 entries never collide in a shared memory
// or disk cache.
//
//===----------------------------------------------------------------------===//

#include "engine/CompileEngine.h"
#include "engine/ScheduleCache.h"
#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/DeadCodeElim.h"
#include "opt/Pass.h"
#include "opt/PassManager.h"
#include "opt/Peephole.h"
#include "opt/StrengthReduce.h"
#include "opt/ValueNumbering.h"
#include "persist/DiskCache.h"
#include "persist/PersistIO.h"
#include "sched/Pipeline.h"
#include "sched/Transaction.h"
#include "support/FaultInjection.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>

using namespace gis;

namespace {

/// A self-deleting temporary directory under the test's working directory.
struct TempDir {
  std::string Path;
  explicit TempDir(const char *Tag) {
    std::string Template = std::string(Tag) + "-XXXXXX";
    std::vector<char> Buf(Template.begin(), Template.end());
    Buf.push_back('\0');
    const char *P = ::mkdtemp(Buf.data());
    EXPECT_NE(P, nullptr);
    Path = P ? P : Template;
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
};

std::unique_ptr<Module> parseOrDie(const char *Text) {
  ParseResult R = parseModule(Text);
  EXPECT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(verifyModule(*R.M).empty());
  return std::move(R.M);
}

/// Runs \p F with \p Args bound to its parameters; expects no trap.
int64_t runFn(const Module &M, Function &F,
              const std::vector<int64_t> &Args) {
  EXPECT_EQ(F.params().size(), Args.size());
  Interpreter I(M);
  for (size_t K = 0; K != Args.size(); ++K)
    I.setReg(F.params()[K], Args[K]);
  ExecResult R = I.run(F);
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  return R.ReturnValue;
}

unsigned countOpcode(const Function &F, Opcode O) {
  unsigned N = 0;
  for (BlockId B : F.layout())
    for (InstrId Id : F.block(B).instrs())
      if (F.instr(Id).opcode() == O)
        ++N;
  return N;
}

/// Everything observable about one run of `main`.
struct Observed {
  bool Trapped = false;
  std::vector<int64_t> Printed;
  int64_t ReturnValue = 0;
  std::vector<std::pair<int64_t, int64_t>> Memory;
};

Observed observe(const Module &M) {
  Observed O;
  Interpreter I(M);
  Function *Main = const_cast<Module &>(M).findFunction("main");
  EXPECT_NE(Main, nullptr);
  ExecResult R = I.run(*Main);
  O.Trapped = R.Trapped;
  O.Printed = R.Printed;
  O.ReturnValue = R.ReturnValue;
  for (const auto &[Addr, Val] : I.memory())
    if (Val != 0)
      O.Memory.emplace_back(Addr, Val);
  std::sort(O.Memory.begin(), O.Memory.end());
  return O;
}

void expectSameBehaviour(const Module &A, const Module &B,
                         const std::string &Context) {
  Observed OA = observe(A);
  Observed OB = observe(B);
  ASSERT_FALSE(OA.Trapped) << Context;
  ASSERT_FALSE(OB.Trapped) << Context;
  EXPECT_EQ(OA.Printed, OB.Printed) << Context;
  EXPECT_EQ(OA.ReturnValue, OB.ReturnValue) << Context;
  EXPECT_EQ(OA.Memory, OB.Memory) << Context;
}

} // namespace

//===----------------------------------------------------------------------===
// Individual passes
//===----------------------------------------------------------------------===

TEST(PeepholeTest, FoldsConstantsAndAlgebraicIdentities) {
  auto M = parseOrDie(R"(
func f(r0) {
entry:
  LI r1 = 6
  LI r2 = 7
  MUL r3 = r1, r2
  AI r4 = r0, 0
  S r5 = r4, r4
  A r6 = r3, r5
  A r7 = r6, r0
  RET r7
}
)");
  Function &F = *M->functions()[0];
  int64_t Before = runFn(*M, F, {100});

  unsigned Rewrites = opt::runPeephole(F);
  EXPECT_GE(Rewrites, 4u); // MUL fold, AI->LR, S x,x -> LI 0, A +0 fold
  EXPECT_TRUE(verifyModule(*M).empty());
  EXPECT_EQ(countOpcode(F, Opcode::MUL), 0u);
  EXPECT_EQ(runFn(*M, F, {100}), Before);
}

TEST(PeepholeTest, CompareAgainstConstantBecomesImmediateForm) {
  auto M = parseOrDie(R"(
func f(r0) {
entry:
  LI r1 = 5
  C cr0 = r0, r1
  BT take, cr0, lt
fall:
  LI r2 = 0
  RET r2
take:
  LI r3 = 1
  RET r3
}
)");
  Function &F = *M->functions()[0];
  EXPECT_GE(opt::runPeephole(F), 1u);
  EXPECT_TRUE(verifyModule(*M).empty());
  EXPECT_EQ(countOpcode(F, Opcode::C), 0u);
  EXPECT_EQ(countOpcode(F, Opcode::CI), 1u);
  EXPECT_EQ(runFn(*M, F, {3}), 1);  // 3 < 5
  EXPECT_EQ(runFn(*M, F, {9}), 0);  // 9 >= 5
}

TEST(StrengthReduceTest, MulByConstantBecomesShifts) {
  auto M = parseOrDie(R"(
func f(r0) {
entry:
  LI r1 = 8
  MUL r2 = r0, r1
  LI r3 = 9
  MUL r4 = r0, r3
  LI r5 = 7
  MUL r6 = r0, r5
  A r7 = r2, r4
  A r8 = r7, r6
  RET r8
}
)");
  Function &F = *M->functions()[0];
  int64_t Before = runFn(*M, F, {11});

  unsigned Reduced =
      opt::runStrengthReduce(F, MachineDescription::rs6k());
  EXPECT_EQ(Reduced, 3u); // x*8 -> SL; x*9 -> SL+A; x*7 -> SL-S
  EXPECT_TRUE(verifyModule(*M).empty());
  EXPECT_EQ(countOpcode(F, Opcode::MUL), 0u);
  EXPECT_GE(countOpcode(F, Opcode::SL), 3u);
  EXPECT_EQ(runFn(*M, F, {11}), Before);
  // Negative values exercise the wrapping-arithmetic path.
  EXPECT_EQ(runFn(*M, F, {-13}), -13 * (8 + 9 + 7));
}

TEST(StrengthReduceTest, ArithmeticShiftRightIsNotUsedForDivision) {
  // SR is an *arithmetic* shift; for negative operands it rounds toward
  // negative infinity where DIV truncates toward zero, so division by a
  // power of two must survive strength reduction untouched.
  auto M = parseOrDie(R"(
func f(r0) {
entry:
  LI r1 = 4
  DIV r2 = r0, r1
  RET r2
}
)");
  Function &F = *M->functions()[0];
  EXPECT_EQ(opt::runStrengthReduce(F, MachineDescription::rs6k()), 0u);
  EXPECT_EQ(countOpcode(F, Opcode::DIV), 1u);
  EXPECT_EQ(runFn(*M, F, {-7}), -1); // truncating: -7/4 == -1, not -2
}

TEST(ValueNumberingTest, DominatedRecomputationIsForwarded) {
  auto M = parseOrDie(R"(
func f(r0, r1) {
entry:
  A r2 = r0, r1
  A r3 = r0, r1
  MUL r4 = r2, r3
  RET r4
}
)");
  Function &F = *M->functions()[0];
  F.recomputeCFG();
  int64_t Before = runFn(*M, F, {3, 4});

  EXPECT_EQ(opt::runValueNumbering(F), 1u);
  EXPECT_TRUE(verifyModule(*M).empty());
  EXPECT_EQ(countOpcode(F, Opcode::A), 1u);
  EXPECT_EQ(runFn(*M, F, {3, 4}), Before);
}

TEST(ValueNumberingTest, MultiDefRegistersAreNotNumbered) {
  // r2 is defined twice, so `A r2 = r0, r0` names no stable value; the
  // later recomputation must not be forwarded to it.
  auto M = parseOrDie(R"(
func f(r0) {
entry:
  A r2 = r0, r0
  LI r2 = 1
  A r3 = r0, r0
  A r4 = r2, r3
  RET r4
}
)");
  Function &F = *M->functions()[0];
  F.recomputeCFG();
  EXPECT_EQ(opt::runValueNumbering(F), 0u);
  EXPECT_EQ(runFn(*M, F, {10}), 21); // 1 + (10+10)
}

TEST(DeadCodeTest, RemovesDeadButKeepsTrappingAndObservable) {
  auto M = parseOrDie(R"(
func f(r0) {
entry:
  MUL r1 = r0, r0
  LI r2 = 5
  DIV r3 = r0, r2
  A r4 = r0, r0
  RET r4
}
)");
  Function &F = *M->functions()[0];
  F.recomputeCFG();
  int64_t Before = runFn(*M, F, {9});

  unsigned Removed = opt::runDeadCodeElim(F);
  // The MUL is dead; the DIV is dead too but can trap, so it stays (and
  // keeps its LI operand live).
  EXPECT_EQ(Removed, 1u);
  EXPECT_TRUE(verifyModule(*M).empty());
  EXPECT_EQ(countOpcode(F, Opcode::MUL), 0u);
  EXPECT_EQ(countOpcode(F, Opcode::DIV), 1u);
  EXPECT_EQ(countOpcode(F, Opcode::LI), 1u);
  EXPECT_EQ(runFn(*M, F, {9}), Before);
}

TEST(DeadCodeTest, CascadesThroughDeadChains) {
  auto M = parseOrDie(R"(
func f(r0) {
entry:
  A r1 = r0, r0
  A r2 = r1, r1
  A r3 = r2, r2
  RET r0
}
)");
  Function &F = *M->functions()[0];
  F.recomputeCFG();
  EXPECT_EQ(opt::runDeadCodeElim(F), 3u);
  EXPECT_EQ(countOpcode(F, Opcode::A), 0u);
}

//===----------------------------------------------------------------------===
// Pass manager: levels, forcing, transactions
//===----------------------------------------------------------------------===

TEST(OptOptionsTest, LevelsEnableDocumentedPasses) {
  opt::OptOptions O0;
  EXPECT_FALSE(O0.anyEnabled());

  opt::OptOptions O1;
  O1.Level = 1;
  EXPECT_TRUE(O1.enabled(opt::PassId::Peephole));
  EXPECT_TRUE(O1.enabled(opt::PassId::DeadCode));
  EXPECT_FALSE(O1.enabled(opt::PassId::StrengthReduce));
  EXPECT_FALSE(O1.enabled(opt::PassId::ValueNumbering));

  opt::OptOptions O2;
  O2.Level = 2;
  for (opt::PassId P : opt::passPipeline())
    EXPECT_TRUE(O2.enabled(P));

  // Forcing overrides the level in both directions.
  opt::OptOptions Forced;
  Forced.force(opt::PassId::ValueNumbering, true);
  EXPECT_TRUE(Forced.enabled(opt::PassId::ValueNumbering));
  EXPECT_TRUE(Forced.anyEnabled());
  Forced.Level = 2;
  Forced.force(opt::PassId::Peephole, false);
  EXPECT_FALSE(Forced.enabled(opt::PassId::Peephole));
}

TEST(PassManagerTest, RunsEveryPassTransactionallyAndReportsWork) {
  const char *Source = R"(
int f(int a, int b) {
  int x = a * 8;
  int y = a * 8;
  int dead = b * 7;
  int z = x + y + b * 1;
  return z - 0;
}
)";
  auto M = compileMiniCOrDie(Source);
  Function &F = *M->functions()[0];
  F.recomputeCFG();
  F.renumberOriginalOrder();
  int64_t Before = runFn(*M, F, {3, 5});
  unsigned InstrsBefore = 0;
  for (BlockId B : F.layout())
    InstrsBefore += F.block(B).instrs().size();

  opt::OptOptions Opts;
  Opts.Level = 2;
  TransactionConfig Tx;
  obs::CounterSet Counters;
  opt::OptRunReport R = opt::runOptPasses(
      F, MachineDescription::rs6k(), Opts, Tx, &Counters);

  EXPECT_EQ(R.Opt.PassesRun, opt::NumOptPasses);
  EXPECT_EQ(R.TransactionsRun, opt::NumOptPasses);
  EXPECT_EQ(R.TransformsRolledBack, 0u);
  EXPECT_EQ(R.VerifierFailures, 0u);
  EXPECT_GE(R.Opt.PeepholeRewrites, 1u);
  EXPECT_GE(R.Opt.StrengthReduced, 1u);
  EXPECT_GE(R.Opt.ValuesNumbered, 1u);
  EXPECT_GE(R.Opt.DeadRemoved, 1u);
  EXPECT_EQ(R.Opt.PassTimes.size(), opt::NumOptPasses);
  EXPECT_EQ(Counters.get(obs::OptPassesRun), opt::NumOptPasses);
  EXPECT_GE(Counters.get(obs::OptDceRemoved), 1u);

  EXPECT_TRUE(verifyModule(*M).empty());
  unsigned InstrsAfter = 0;
  for (BlockId B : F.layout())
    InstrsAfter += F.block(B).instrs().size();
  EXPECT_LT(InstrsAfter, InstrsBefore);
  EXPECT_EQ(runFn(*M, F, {3, 5}), Before);
}

TEST(PassManagerTest, PipelineIntegrationRunsPassesBeforeScheduling) {
  std::string Source = generateRandomMiniC(7);
  auto Base = compileMiniCOrDie(Source);
  auto Sched = compileMiniCOrDie(Source);

  PipelineOptions Opts;
  Opts.Opt.Level = 2;
  PipelineStats Stats =
      scheduleModule(*Sched, MachineDescription::rs6k(), Opts);

  EXPECT_GE(Stats.Opt.PassesRun, opt::NumOptPasses); // >= 1 function
  EXPECT_EQ(Stats.TransformsRolledBack, 0u);
  EXPECT_EQ(Stats.VerifierFailures, 0u);
  EXPECT_TRUE(verifyModule(*Sched).empty());
  expectSameBehaviour(*Base, *Sched, Source);
}

//===----------------------------------------------------------------------===
// Fault injection: corrupt each pass in turn
//===----------------------------------------------------------------------===

class OptFaultMatrixTest : public ::testing::TestWithParam<const char *> {
protected:
  void TearDown() override { FaultInjector::instance().disarm(); }
};

// For each optimizer pass, arm its fault stage and compile random
// programs until the fault fires.  The corruption must be caught by the
// structural verifier, rolled back, diagnosed -- and the final program
// must still behave exactly like the unoptimized original.
TEST_P(OptFaultMatrixTest, CorruptionIsCaughtAndRolledBack) {
  const char *Stage = GetParam();
  unsigned TotalFaults = 0;
  for (uint64_t Seed = 1; Seed <= 10 && TotalFaults == 0; ++Seed) {
    std::string Source = generateRandomMiniC(Seed);
    auto Base = compileMiniCOrDie(Source);
    auto Sched = compileMiniCOrDie(Source);

    PipelineOptions Opts;
    Opts.Opt.Level = 2;
    FaultInjector::instance().arm(Stage);
    PipelineStats Stats =
        scheduleModule(*Sched, MachineDescription::rs6k(), Opts);
    FaultInjector::instance().disarm();

    ASSERT_TRUE(verifyModule(*Sched).empty())
        << "stage " << Stage << " seed " << Seed;
    if (Stats.FaultsInjected > 0) {
      EXPECT_EQ(Stats.FaultsInjected, 1u);
      EXPECT_GE(Stats.VerifierFailures, 1u);
      EXPECT_GE(Stats.TransformsRolledBack, 1u);
      EXPECT_FALSE(Stats.Diags.empty());
      TotalFaults += Stats.FaultsInjected;
    }
    expectSameBehaviour(*Base, *Sched, Source);
  }
  EXPECT_GE(TotalFaults, 1u) << "stage " << Stage << " never ran";
}

INSTANTIATE_TEST_SUITE_P(Passes, OptFaultMatrixTest,
                         ::testing::Values("opt-peephole", "opt-strength",
                                           "opt-gvn", "opt-dce"));

// A rolled-back pass must leave the function exactly as the previous pass
// committed it: with only DCE enabled and its transaction faulted, the
// result is bit-identical to a run with the optimizer off.
TEST(OptFaultInjectionTest, RollbackLeavesPreviousCommitIntact) {
  // A single function, so the one-shot fault hits its only DCE
  // transaction and nothing else in the module is optimized.
  std::string Source = R"(
int main() {
  int a = 5;
  int dead = a * 3;
  int x = a + 2;
  print(x);
  return x;
}
)";
  auto Ref = compileMiniCOrDie(Source);
  auto M = compileMiniCOrDie(Source);

  PipelineOptions Opts;
  Opts.Opt.force(opt::PassId::DeadCode, true);
  FaultInjector::instance().arm("opt-dce");
  PipelineStats Stats = scheduleModule(*M, MachineDescription::rs6k(), Opts);
  FaultInjector::instance().disarm();
  ASSERT_EQ(Stats.FaultsInjected, 1u);
  EXPECT_GE(Stats.TransformsRolledBack, 1u);

  PipelineOptions RefOpts;
  scheduleModule(*Ref, MachineDescription::rs6k(), RefOpts);
  EXPECT_EQ(moduleToString(*M), moduleToString(*Ref));
}

//===----------------------------------------------------------------------===
// Differential-oracle fuzzing across -O levels
//===----------------------------------------------------------------------===

namespace {

/// 200 random programs through the full pipeline at one -O level, every
/// function checked by the execution oracle.  Programs are kept small so
/// the suite stays fast under TSan.
void fuzzAtLevel(unsigned Level) {
  RandomProgramOptions RP;
  RP.MaxStmtsPerFunction = 10;
  RP.NumHelpers = 1;
  RP.MaxLoopTrip = 6;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    std::string Source = generateRandomMiniC(Seed, RP);
    auto M = compileMiniCOrDie(Source);

    PipelineOptions Opts;
    Opts.Opt.Level = Level;
    Opts.EnableOracle = true;
    PipelineStats Stats =
        scheduleModule(*M, MachineDescription::rs6k(), Opts);

    ASSERT_EQ(Stats.OracleMismatches, 0u)
        << "-O" << Level << " seed " << Seed << "\n" << Source;
    ASSERT_EQ(Stats.VerifierFailures, 0u)
        << "-O" << Level << " seed " << Seed;
    ASSERT_EQ(Stats.RegionsRolledBack + Stats.TransformsRolledBack, 0u)
        << "-O" << Level << " seed " << Seed;
    ASSERT_TRUE(verifyModule(*M).empty())
        << "-O" << Level << " seed " << Seed;
  }
}

} // namespace

TEST(OptOracleFuzzTest, O0IsOracleClean) { fuzzAtLevel(0); }
TEST(OptOracleFuzzTest, O1IsOracleClean) { fuzzAtLevel(1); }
TEST(OptOracleFuzzTest, O2IsOracleClean) { fuzzAtLevel(2); }

//===----------------------------------------------------------------------===
// Cache isolation: the -O level is part of the fingerprint
//===----------------------------------------------------------------------===

TEST(OptCacheKeyTest, ResolvedEnablementIsFingerprinted) {
  PipelineOptions O0, O1, O2;
  O1.Opt.Level = 1;
  O2.Opt.Level = 2;
  EXPECT_NE(fingerprintOptions(O0), fingerprintOptions(O1));
  EXPECT_NE(fingerprintOptions(O0), fingerprintOptions(O2));
  EXPECT_NE(fingerprintOptions(O1), fingerprintOptions(O2));

  // The *resolved* pipeline is hashed, not the raw level: -O0 with every
  // pass forced on runs exactly the -O2 pipeline and shares its entries.
  PipelineOptions Forced;
  for (opt::PassId P : opt::passPipeline())
    Forced.Opt.force(P, true);
  EXPECT_EQ(fingerprintOptions(Forced), fingerprintOptions(O2));
}

TEST(OptCacheKeyTest, SharedTiersNeverServeAcrossLevels) {
  TempDir D("gis-opt-cache");
  const char *Source = R"(
int main() {
  int a = 6;
  int x = a * 8;
  int y = a * 8;
  print(x + y);
  return x;
}
)";
  ScheduleCache Shared(256);

  auto compileAt = [&](unsigned Level) {
    auto M = compileMiniCOrDie(Source);
    PipelineOptions P;
    P.Opt.Level = Level;
    EngineOptions E;
    E.Jobs = 1;
    E.SharedCache = &Shared;
    E.CacheDir = D.Path;
    CompileEngine Engine(MachineDescription::rs6k(), P, E);
    EngineReport R = Engine.compile(*M);
    return std::make_pair(moduleToString(*M), R);
  };

  // Cold at -O0, then -O2 over the same shared memory cache and the same
  // disk directory: the -O2 run must miss both tiers.
  auto [Text0, Cold0] = compileAt(0);
  EXPECT_EQ(Cold0.CacheHits, 0u);
  auto [Text2, Cold2] = compileAt(2);
  EXPECT_EQ(Cold2.CacheHits, 0u);
  EXPECT_EQ(Cold2.DiskHits, 0u);
  EXPECT_NE(Text0, Text2); // the optimizer visibly changed the code

  // Warm repeats at each level hit and replay their own entry.
  auto [Warm0Text, Warm0] = compileAt(0);
  EXPECT_EQ(Warm0.CacheHits, 1u);
  EXPECT_EQ(Warm0Text, Text0);
  auto [Warm2Text, Warm2] = compileAt(2);
  EXPECT_EQ(Warm2.CacheHits, 1u);
  EXPECT_EQ(Warm2Text, Text2);

  // A fresh process (empty memory tier) over the same directory still
  // resolves each level to its own disk entry.
  ScheduleCache Fresh(256);
  auto M = compileMiniCOrDie(Source);
  PipelineOptions P2;
  P2.Opt.Level = 2;
  EngineOptions E;
  E.Jobs = 1;
  E.SharedCache = &Fresh;
  E.CacheDir = D.Path;
  CompileEngine Engine(MachineDescription::rs6k(), P2, E);
  EngineReport R = Engine.compile(*M);
  EXPECT_EQ(R.DiskHits, 1u);
  EXPECT_EQ(moduleToString(*M), Text2);
}

//===----------------------------------------------------------------------===
// Disk-tier size bound and eviction
//===----------------------------------------------------------------------===

TEST(DiskEvictionTest, OldestEntriesEvictedNeverTheJustPublished) {
  TempDir D("gis-evict");
  // MaxBytes=1: every publish overflows the bound, so each insert evicts
  // everything except the entry it just published.
  persist::DiskScheduleCache DC(D.Path, 1);
  ASSERT_TRUE(DC.open().isOk());
  EXPECT_EQ(DC.maxBytes(), 1u);

  auto M = parseOrDie("func f {\nentry:\n  LI r1 = 1\n  RET r1\n}\n");
  const Function &F = *M->functions()[0];
  PipelineStats Stats;
  Key128 K1{1, 0}, K2{2, 0}, K3{3, 0};
  DC.insert(K1, F, Stats);
  DC.insert(K2, F, Stats);
  DC.insert(K3, F, Stats);

  EXPECT_EQ(persist::listFilesWithSuffix(D.Path, ".gse").size(), 1u);
  EXPECT_EQ(DC.stats().Evictions, 2u);
  EXPECT_EQ(DC.stats().Inserts, 3u);

  // The survivor is the newest entry; the evicted ones are plain misses.
  Function Out("out");
  PipelineStats OutStats;
  EXPECT_TRUE(DC.lookup(K3, Out, OutStats));
  EXPECT_FALSE(DC.lookup(K1, Out, OutStats));
}

TEST(DiskEvictionTest, UnboundedByDefault) {
  TempDir D("gis-evict");
  persist::DiskScheduleCache DC(D.Path);
  ASSERT_TRUE(DC.open().isOk());
  auto M = parseOrDie("func f {\nentry:\n  LI r1 = 1\n  RET r1\n}\n");
  PipelineStats Stats;
  for (uint64_t K = 1; K <= 8; ++K)
    DC.insert(Key128{K, 0}, *M->functions()[0], Stats);
  EXPECT_EQ(persist::listFilesWithSuffix(D.Path, ".gse").size(), 8u);
  EXPECT_EQ(DC.stats().Evictions, 0u);
}

TEST(DiskEvictionTest, EngineCountsEvictionsInStatsAndRegistry) {
  TempDir D("gis-evict");
  // A bound small enough that twelve distinct programs cannot all fit.
  EngineOptions E;
  E.Jobs = 1;
  E.CacheDir = D.Path;
  E.CacheDirMaxBytes = 4096;

  RandomProgramOptions RP;
  RP.MaxStmtsPerFunction = 8;
  RP.NumHelpers = 1;
  std::vector<std::unique_ptr<Module>> Modules;
  std::vector<BatchItem> Batch;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    Modules.push_back(compileMiniCOrDie(generateRandomMiniC(Seed, RP)));
    Batch.push_back(
        BatchItem{Modules.back().get(), "p" + std::to_string(Seed)});
  }
  CompileEngine Engine(MachineDescription::rs6k(), PipelineOptions{}, E);
  EngineReport R = Engine.compileBatch(Batch);

  EXPECT_GT(R.Disk.Evictions, 0u);
  EXPECT_EQ(R.Aggregate.Counters.get(obs::PersistEvictions),
            R.Disk.Evictions);
  // The directory respects the bound after every publish (the bound can
  // only be exceeded when a single just-published entry alone does).
  std::vector<persist::DirEntryInfo> Files =
      persist::listFilesWithSuffix(D.Path, ".gse");
  EXPECT_LT(Files.size(), 12u);
  uint64_t Total = 0;
  for (const persist::DirEntryInfo &Entry : Files)
    Total += Entry.SizeBytes;
  EXPECT_TRUE(Total <= 4096u || Files.size() == 1u);
}

//===----------------------------------------------------------------------===
// Persisted stats round-trip the optimizer scalars
//===----------------------------------------------------------------------===

TEST(OptStatsTest, DiskEntryRoundTripsOptScalars) {
  auto M = parseOrDie("func f {\nentry:\n  LI r1 = 1\n  RET r1\n}\n");
  const Function &F = *M->functions()[0];
  PipelineStats S;
  S.Opt.PassesRun = 4;
  S.Opt.PeepholeRewrites = 3;
  S.Opt.StrengthReduced = 2;
  S.Opt.ValuesNumbered = 5;
  S.Opt.DeadRemoved = 7;

  Key128 Key{0x1234, 0x5678};
  std::string Bytes = persist::DiskScheduleCache::serializeEntry(Key, F, S);
  Function Out("out");
  PipelineStats OutS;
  ASSERT_TRUE(
      persist::DiskScheduleCache::deserializeEntry(Bytes, Key, Out, OutS)
          .isOk());
  EXPECT_EQ(OutS.Opt.PassesRun, 4u);
  EXPECT_EQ(OutS.Opt.PeepholeRewrites, 3u);
  EXPECT_EQ(OutS.Opt.StrengthReduced, 2u);
  EXPECT_EQ(OutS.Opt.ValuesNumbered, 5u);
  EXPECT_EQ(OutS.Opt.DeadRemoved, 7u);
}

//===- tests/machine_test.cpp - Machine model and timing tests ------------===//
//
// Validates the parametric machine description (paper Section 2.1) and
// calibrates the timing simulator against the paper's hand cycle counts:
// the minmax loop of Figure 2 runs in 20-22 cycles/iteration, the
// usefully-scheduled Figure 5 in 12-13, and the speculative Figure 6 in
// 11-12.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "machine/MachineDescription.h"
#include "machine/Timing.h"

#include <gtest/gtest.h>

using namespace gis;

TEST(MachineTest, RS6KUnits) {
  MachineDescription MD = MachineDescription::rs6k();
  EXPECT_EQ(MD.numUnitTypes(), 3u);
  EXPECT_EQ(MD.unitType(0).Count, 1u);
  EXPECT_EQ(MD.unitType(1).Count, 1u);
  EXPECT_EQ(MD.unitType(2).Count, 1u);
  EXPECT_EQ(MD.totalUnits(), 3u);

  // Unit assignment.
  EXPECT_EQ(MD.unitTypeForOp(Opcode::A), MD.unitTypeForOp(Opcode::L));
  EXPECT_EQ(MD.unitTypeForOp(Opcode::FA), MD.unitTypeForOp(Opcode::FC));
  EXPECT_NE(MD.unitTypeForOp(Opcode::A), MD.unitTypeForOp(Opcode::B));
  EXPECT_NE(MD.unitTypeForOp(Opcode::FA), MD.unitTypeForOp(Opcode::A));
  // Compares execute in the fixed-point unit.
  EXPECT_EQ(MD.unitTypeForOp(Opcode::C), MD.unitTypeForOp(Opcode::A));

  // Execution times.
  EXPECT_EQ(MD.execTime(Opcode::A), 1u);
  EXPECT_EQ(MD.execTime(Opcode::L), 1u);
  EXPECT_GT(MD.execTime(Opcode::MUL), 1u);
  EXPECT_GT(MD.execTime(Opcode::DIV), MD.execTime(Opcode::MUL));
}

TEST(MachineTest, RS6KDelayRules) {
  MachineDescription MD = MachineDescription::rs6k();
  // Delayed load: 1 cycle to any consumer.
  EXPECT_EQ(MD.flowDelay(Opcode::L, Opcode::A), 1u);
  EXPECT_EQ(MD.flowDelay(Opcode::LU, Opcode::C), 1u);
  EXPECT_EQ(MD.flowDelay(Opcode::LF, Opcode::FA), 1u);
  // Fixed compare -> branch: 3 cycles; to non-branches: none.
  EXPECT_EQ(MD.flowDelay(Opcode::C, Opcode::BT), 3u);
  EXPECT_EQ(MD.flowDelay(Opcode::CI, Opcode::BF), 3u);
  EXPECT_EQ(MD.flowDelay(Opcode::C, Opcode::A), 0u);
  // Float arithmetic: 1 cycle to any consumer.
  EXPECT_EQ(MD.flowDelay(Opcode::FA, Opcode::FM), 1u);
  // Float compare -> branch: 5 cycles.
  EXPECT_EQ(MD.flowDelay(Opcode::FC, Opcode::BT), 5u);
  // No delay between plain fixed-point ops.
  EXPECT_EQ(MD.flowDelay(Opcode::A, Opcode::S), 0u);
}

TEST(MachineTest, SuperscalarFactory) {
  MachineDescription MD = MachineDescription::superscalar(2, 1, 1);
  EXPECT_EQ(MD.unitType(0).Count, 2u);
  EXPECT_EQ(MD.totalUnits(), 4u);
}

namespace {

/// Positions in \p Trace where the instruction has opcode \p Op.
std::vector<size_t> markerPositions(const Function &F,
                                    const std::vector<TraceEntry> &Trace,
                                    Opcode Op) {
  std::vector<size_t> Out;
  for (size_t K = 0; K != Trace.size(); ++K)
    if (F.instr(Trace[K].Instr).opcode() == Op)
      Out.push_back(K);
  return Out;
}

} // namespace

TEST(TimingTest, SerialFixedPointChain) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 1
  AI r2 = r1, 1
  AI r3 = r2, 1
  RET r3
}
)");
  const Function &F = *M->functions()[0];
  Interpreter I(*M);
  I.enableTrace(true);
  I.run(F);
  MachineDescription MD = MachineDescription::rs6k();
  TimingSimulator Sim(MD);
  Sim.recordIssueTimes(true);
  TimingResult T = Sim.simulate(I.trace());
  // One fixed-point unit, 1-cycle ops, no delays: issue at 0,1,2; RET
  // reads r3, which completes at 3, so it issues at 3 on the branch unit.
  ASSERT_EQ(T.IssueTimes.size(), 4u);
  EXPECT_EQ(T.IssueTimes[0], 0u);
  EXPECT_EQ(T.IssueTimes[1], 1u);
  EXPECT_EQ(T.IssueTimes[2], 2u);
  EXPECT_EQ(T.IssueTimes[3], 3u);
}

TEST(TimingTest, DelayedLoadStallsConsumer) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 100
  L r2 = mem[r1 + 0]
  AI r3 = r2, 1
  RET r3
}
)");
  const Function &F = *M->functions()[0];
  Interpreter I(*M);
  I.enableTrace(true);
  I.run(F);
  TimingSimulator Sim(MachineDescription::rs6k());
  Sim.recordIssueTimes(true);
  TimingResult T = Sim.simulate(I.trace());
  // LI@0, L@1 (completes at 2), AI waits 2+1(load delay)=3.
  EXPECT_EQ(T.IssueTimes[0], 0u);
  EXPECT_EQ(T.IssueTimes[1], 1u);
  EXPECT_EQ(T.IssueTimes[2], 3u);
}

TEST(TimingTest, CompareBranchDelay) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 1
  CI cr0 = r1, 0
  BT B1, cr0, gt
B0b:
  NOP
B1:
  RET
}
)");
  const Function &F = *M->functions()[0];
  Interpreter I(*M);
  I.enableTrace(true);
  I.run(F);
  TimingSimulator Sim(MachineDescription::rs6k());
  Sim.recordIssueTimes(true);
  TimingResult T = Sim.simulate(I.trace());
  // LI@0, CI@1 (completes 2), BT waits 2+3=5.
  EXPECT_EQ(T.IssueTimes[1], 1u);
  EXPECT_EQ(T.IssueTimes[2], 5u);
}

TEST(TimingTest, IndependentOpsDualIssueAcrossUnits) {
  // A fixed-point op and a branch can issue in the same cycle.
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 1
  B B1
B1:
  RET r1
}
)");
  const Function &F = *M->functions()[0];
  Interpreter I(*M);
  I.enableTrace(true);
  I.run(F);
  TimingSimulator Sim(MachineDescription::rs6k());
  Sim.recordIssueTimes(true);
  TimingResult T = Sim.simulate(I.trace());
  EXPECT_EQ(T.IssueTimes[0], 0u);
  EXPECT_EQ(T.IssueTimes[1], 0u); // branch unit, same cycle
}

TEST(TimingTest, MultiCycleOpOccupiesUnit) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 6
  LI r2 = 7
  MUL r3 = r1, r2
  LI r4 = 9
  RET r3
}
)");
  const Function &F = *M->functions()[0];
  Interpreter I(*M);
  I.enableTrace(true);
  I.run(F);
  MachineDescription MD = MachineDescription::rs6k();
  TimingSimulator Sim(MD);
  Sim.recordIssueTimes(true);
  TimingResult T = Sim.simulate(I.trace());
  // MUL@2 occupies the single fixed unit for its full latency, stalling
  // the next (independent) fixed-point op.
  uint64_t MulLatency = MD.execTime(Opcode::MUL);
  EXPECT_EQ(T.IssueTimes[2], 2u);
  EXPECT_EQ(T.IssueTimes[3], 2 + MulLatency);
}

TEST(TimingTest, WiderMachineIssuesInParallel) {
  const char *Text = R"(
func f {
B0:
  LI r1 = 1
  LI r2 = 2
  LI r3 = 3
  LI r4 = 4
  RET r1
}
)";
  auto M = parseModuleOrDie(Text);
  const Function &F = *M->functions()[0];
  Interpreter I(*M);
  I.enableTrace(true);
  I.run(F);

  TimingSimulator Narrow(MachineDescription::rs6k());
  TimingResult TN = Narrow.simulate(I.trace());

  MachineDescription Wide = MachineDescription::superscalar(4, 1, 1);
  TimingSimulator WideSim(Wide);
  TimingResult TW = WideSim.simulate(I.trace());

  EXPECT_LT(TW.Cycles, TN.Cycles);
}

//===----------------------------------------------------------------------===
// Paper calibration: Figures 2, 5 and 6.
//===----------------------------------------------------------------------===

namespace {

// Figure 2: the original (unscheduled) loop.  Block names: CL.4 -> BL6,
// CL.6 -> BL4, CL.9 -> BL10, CL.11 -> BL8, CL.0 -> BL1 per the paper's
// basic-block numbering.
const char *Fig2Loop = R"(
func minmax2 {
BL0:
  LI r31 = 1000
  L r28 = mem[r31 + 0]
  LR r30 = r28
  LI r29 = 1
BL1:
  I1: L r12 = mem[r31 + 4]
  I2: LU r0, r31 = mem[r31 + 8]
  I3: C cr7 = r12, r0
  I4: BF BL6, cr7, gt
BL2:
  I5: C cr6 = r12, r30
  I6: BF BL4, cr6, gt
BL3:
  I7: LR r30 = r12
BL4:
  I8: C cr7 = r0, r28
  I9: BF BL10, cr7, lt
BL5:
  I10: LR r28 = r0
  I11: B BL10
BL6:
  I12: C cr6 = r0, r30
  I13: BF BL8, cr6, gt
BL7:
  I14: LR r30 = r0
BL8:
  I15: C cr7 = r12, r28
  I16: BF BL10, cr7, lt
BL9:
  I17: LR r28 = r12
BL10:
  I18: AI r29 = r29, 2
  I19: C cr4 = r29, r27
  I20: BT BL1, cr4, lt
BL11:
  RET
}
)";

// Figure 5: the result of useful-only global scheduling, transcribed from
// the paper.
const char *Fig5Loop = R"(
func minmax5 {
BL0:
  LI r31 = 1000
  L r28 = mem[r31 + 0]
  LR r30 = r28
  LI r29 = 1
BL1:
  I1: L r12 = mem[r31 + 4]
  I2: LU r0, r31 = mem[r31 + 8]
  I18: AI r29 = r29, 2
  I3: C cr7 = r12, r0
  I19: C cr4 = r29, r27
  I4: BF BL6, cr7, gt
BL2:
  I5: C cr6 = r12, r30
  I8: C cr7 = r0, r28
  I6: BF BL4, cr6, gt
BL3:
  I7: LR r30 = r12
BL4:
  I9: BF BL10, cr7, lt
BL5:
  I10: LR r28 = r0
  I11: B BL10
BL6:
  I12: C cr6 = r0, r30
  I15: C cr7 = r12, r28
  I13: BF BL8, cr6, gt
BL7:
  I14: LR r30 = r0
BL8:
  I16: BF BL10, cr7, lt
BL9:
  I17: LR r28 = r12
BL10:
  I20: BT BL1, cr4, lt
BL11:
  RET
}
)";

// Figure 6: useful + 1-branch speculative scheduling; I5 and I12 hoisted
// into BL1 (I12's condition register renamed to cr5 by the scheduler).
const char *Fig6Loop = R"(
func minmax6 {
BL0:
  LI r31 = 1000
  L r28 = mem[r31 + 0]
  LR r30 = r28
  LI r29 = 1
BL1:
  I1: L r12 = mem[r31 + 4]
  I2: LU r0, r31 = mem[r31 + 8]
  I18: AI r29 = r29, 2
  I3: C cr7 = r12, r0
  I19: C cr4 = r29, r27
  I5: C cr6 = r12, r30
  I12: C cr5 = r0, r30
  I4: BF BL6, cr7, gt
BL2:
  I8: C cr7 = r0, r28
  I6: BF BL4, cr6, gt
BL3:
  I7: LR r30 = r12
BL4:
  I9: BF BL10, cr7, lt
BL5:
  I10: LR r28 = r0
  I11: B BL10
BL6:
  I15: C cr7 = r12, r28
  I13: BF BL8, cr5, gt
BL7:
  I14: LR r30 = r0
BL8:
  I16: BF BL10, cr7, lt
BL9:
  I17: LR r28 = r12
BL10:
  I20: BT BL1, cr4, lt
BL11:
  RET
}
)";

/// Seeds array data that drives a fixed number of min/max updates per
/// iteration through the loop, then measures the steady-state period.
double minmaxPeriod(const char *Text, int UpdatesPerIteration) {
  auto M = parseModuleOrDie(Text);
  const Function &F = *M->functions()[0];
  const int Iters = 64;
  const int N = 2 * Iters + 2;

  Interpreter I(*M);
  I.enableTrace(true);
  for (int K = 0; K != N; ++K) {
    int64_t V = 0;
    switch (UpdatesPerIteration) {
    case 0:
      V = 5; // constant array: min/max settle after the first iteration
      break;
    case 1:
      V = K; // increasing: one max update per iteration (else path)
      break;
    case 2:
      // Pairs (u, v) with u ever larger, v ever smaller: two updates.
      V = (K % 2 == 1) ? 1000 + K : -1000 - K;
      break;
    default:
      ADD_FAILURE() << "bad update count";
    }
    I.storeWord(1000 + 4 * K, V);
  }
  I.setReg(Reg::gpr(27), N - 2);
  ExecResult R = I.run(F);
  EXPECT_FALSE(R.Trapped) << R.TrapReason;

  TimingSimulator Sim(MachineDescription::rs6k());
  Sim.recordIssueTimes(true);
  TimingResult T = Sim.simulate(I.trace());
  std::vector<size_t> Markers = markerPositions(F, I.trace(), Opcode::BT);
  EXPECT_GT(Markers.size(), 10u);
  return steadyStatePeriod(T.IssueTimes, Markers);
}

} // namespace

TEST(PaperCalibration, Figure2Runs20To22CyclesPerIteration) {
  double P0 = minmaxPeriod(Fig2Loop, 0);
  double P1 = minmaxPeriod(Fig2Loop, 1);
  double P2 = minmaxPeriod(Fig2Loop, 2);
  EXPECT_NEAR(P0, 20.0, 1.0);
  EXPECT_NEAR(P1, 21.0, 1.0);
  EXPECT_NEAR(P2, 22.0, 1.0);
  EXPECT_LE(P0, P1);
  EXPECT_LE(P1, P2);
}

TEST(PaperCalibration, Figure5Runs12To13CyclesPerIteration) {
  double P0 = minmaxPeriod(Fig5Loop, 0);
  double P2 = minmaxPeriod(Fig5Loop, 2);
  EXPECT_NEAR(P0, 12.0, 1.0);
  EXPECT_NEAR(P2, 13.0, 1.5);
}

TEST(PaperCalibration, Figure6Runs11To12CyclesPerIteration) {
  double P0 = minmaxPeriod(Fig6Loop, 0);
  double P2 = minmaxPeriod(Fig6Loop, 2);
  EXPECT_NEAR(P0, 11.0, 1.0);
  EXPECT_NEAR(P2, 12.0, 1.5);
}

TEST(PaperCalibration, SchedulingStaircase) {
  // The paper's headline shape: 20-22 -> 12-13 -> 11-12.
  for (int Updates : {0, 2}) {
    double P2 = minmaxPeriod(Fig2Loop, Updates);
    double P5 = minmaxPeriod(Fig5Loop, Updates);
    double P6 = minmaxPeriod(Fig6Loop, Updates);
    EXPECT_GT(P2, P5) << "useful scheduling must beat the original";
    EXPECT_GE(P5, P6) << "speculation must not lose to useful-only";
  }
}

//===- tests/analysis2_test.cpp - Final analysis coverage batch ------------===//
//
// Memory-disambiguation chains through LR, PDG printing, deterministic
// orders, and whole-module scheduling across machine widths on random
// programs.
//
//===----------------------------------------------------------------------===//

#include "analysis/MemDisambig.h"
#include "analysis/PDG.h"
#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "sched/Pipeline.h"
#include "support/Format.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace gis;

TEST(MemDisambig2Test, ResolvesThroughLRChain) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 1000
  LR r2 = r1
  AI r3 = r2, 4
  ST mem[r1 + 4] = r9
  L r4 = mem[r3 + 0]
  L r5 = mem[r3 + 4]
  RET r4
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  MemDisambiguator D(F, R);
  // mem[r1+4] and mem[r3+0] are the same address (r3 = r1 + 4 via LR).
  EXPECT_FALSE(D.provablyDisjoint(3, 4));
  // mem[r1+4] and mem[r3+4] (= r1+8) differ.
  EXPECT_TRUE(D.provablyDisjoint(3, 5));
}

TEST(MemDisambig2Test, ChainDepthCapIsSafe) {
  // A 20-deep AI chain exceeds the resolver's depth cap: it must fall
  // back to "may alias", never crash.
  std::string Text = "func f {\nB0:\n  LI r0 = 1000\n";
  for (int K = 1; K <= 20; ++K)
    Text += formatString("  AI r%d = r%d, 4\n", K, K - 1);
  Text += "  ST mem[r20 + 0] = r30\n  L r25 = mem[r0 + 0]\n  RET r25\n}\n";
  auto M = parseModuleOrDie(Text);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  MemDisambiguator D(F, R);
  // Conservatively dependent (depth cap) -- and definitely no crash.
  EXPECT_FALSE(D.provablyDisjoint(21, 22));
}

TEST(PDG2Test, PrintProducesAllSections) {
  auto M = parseModuleOrDie(R"(
func f {
A:
  C cr0 = r1, r2
  BF C_, cr0, gt
B:
  LI r3 = 1
C_:
  RET r3
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  PDG P = PDG::build(F, R, MachineDescription::rs6k());
  std::ostringstream OS;
  P.print(F, OS);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("CSPDG (control dependences):"), std::string::npos);
  EXPECT_NE(Text.find("equivalence classes:"), std::string::npos);
  EXPECT_NE(Text.find("data dependences:"), std::string::npos);
  // The compare->branch flow edge with its delay appears.
  EXPECT_NE(Text.find("[flow d=3]"), std::string::npos);
  // A and C_ are equivalent.
  EXPECT_NE(Text.find("{A, C_}"), std::string::npos);
}

TEST(PDG2Test, MotionKindNames) {
  EXPECT_STREQ(motionKindName(MotionKind::Useful), "useful");
  EXPECT_STREQ(motionKindName(MotionKind::Speculative), "speculative");
  EXPECT_STREQ(motionKindName(MotionKind::Duplication), "duplication");
  EXPECT_STREQ(motionKindName(MotionKind::Identity), "identity");
  EXPECT_STREQ(depKindName(DepKind::Flow), "flow");
  EXPECT_STREQ(depKindName(DepKind::Memory), "memory");
}

TEST(Determinism2Test, AnalysesAreOrderStable) {
  // Build the same PDG twice; every printed artefact must be identical.
  std::string Source = generateRandomMiniC(4242);
  auto M1 = compileMiniCOrDie(Source);
  auto M2 = compileMiniCOrDie(Source);
  for (size_t FI = 0; FI != M1->functions().size(); ++FI) {
    Function &F1 = *M1->functions()[FI];
    Function &F2 = *M2->functions()[FI];
    LoopInfo L1 = LoopInfo::compute(F1);
    LoopInfo L2 = LoopInfo::compute(F2);
    ASSERT_EQ(L1.numLoops(), L2.numLoops());
    SchedRegion R1 = SchedRegion::build(F1, L1, -1);
    SchedRegion R2 = SchedRegion::build(F2, L2, -1);
    PDG P1 = PDG::build(F1, R1, MachineDescription::rs6k());
    PDG P2 = PDG::build(F2, R2, MachineDescription::rs6k());
    std::ostringstream O1, O2;
    P1.print(F1, O1);
    P2.print(F2, O2);
    EXPECT_EQ(O1.str(), O2.str());
  }
}

class WidthSemanticsTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, unsigned>> {};

TEST_P(WidthSemanticsTest, SchedulingForAnyWidthPreservesBehaviour) {
  auto [Seed, Width] = GetParam();
  std::string Source = generateRandomMiniC(Seed);
  CompileResult Base = compileMiniC(Source);
  ASSERT_TRUE(Base.ok()) << Base.Error;
  CompileResult Sched = compileMiniC(Source);
  MachineDescription MD = MachineDescription::superscalar(Width, 1, 2);
  PipelineOptions Opts;
  Opts.AllowDuplication = true;
  Opts.MaxSpecDepth = 2;
  scheduleModule(*Sched.M, MD, Opts);

  auto Observe = [](Module &M) {
    Interpreter I(M);
    ExecResult R = I.run(*M.findFunction("main"), 5'000'000);
    EXPECT_FALSE(R.Trapped) << R.TrapReason;
    return std::make_pair(R.Printed, R.ReturnValue);
  };
  EXPECT_EQ(Observe(*Base.M), Observe(*Sched.M)) << Source;
}

INSTANTIATE_TEST_SUITE_P(
    RandomProgramsByWidth, WidthSemanticsTest,
    ::testing::Combine(::testing::Range<uint64_t>(500, 508),
                       ::testing::Values(2u, 4u)));

//===- tests/superblock_test.cpp - Superblock formation & pricing ----------===//
//
// The src/trace/ subsystem and the branch-predictor-aware timing model:
// trace formation picks mutual-most-likely chains (static branch-not-taken
// without a profile) and never swallows loop headers or the entry; tail
// duplication makes a chain single-entry within its clone budget or
// truncates it; the pipeline's superblock phase survives 200-seed
// differential-oracle fuzzing at every -O x scheduling level combination,
// is bit-identical across --region-jobs, contains injected "trace-form"
// and "tail-dup" faults, and splits the schedule-cache fingerprint on
// every superblock knob.  The timing simulator's predictor keeps cycle
// counts bit-identical when off and prices mispredictions sensibly when
// on (profile-oracle never worse than always-taken; bimodal learns a
// biased branch).
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "engine/ScheduleCache.h"
#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "machine/Timing.h"
#include "sched/Pipeline.h"
#include "support/FaultInjection.h"
#include "trace/TailDuplication.h"
#include "trace/TraceFormation.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace gis;

namespace {

BlockId blockByLabel(const Function &F, const std::string &Label) {
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    if (F.block(B).label() == Label)
      return B;
  ADD_FAILURE() << "no block " << Label;
  return InvalidId;
}

/// Parses, recomputes the CFG and renumbers -- the state the trace
/// subsystem expects (and the pipeline guarantees).
std::unique_ptr<Module> parseReady(const char *Text) {
  auto M = parseModuleOrDie(Text);
  for (const auto &FPtr : M->functions()) {
    FPtr->recomputeCFG();
    FPtr->renumberOriginalOrder();
  }
  return M;
}

/// Everything observable about one run of `main`.
struct Observed {
  bool Trapped = false;
  std::vector<int64_t> Printed;
  int64_t ReturnValue = 0;
  std::vector<std::pair<int64_t, int64_t>> Memory;
};

Observed observe(const Module &M) {
  Observed O;
  Interpreter I(M);
  Function *Main = const_cast<Module &>(M).findFunction("main");
  EXPECT_NE(Main, nullptr);
  ExecResult R = I.run(*Main);
  O.Trapped = R.Trapped;
  O.Printed = R.Printed;
  O.ReturnValue = R.ReturnValue;
  for (const auto &[Addr, Val] : I.memory())
    if (Val != 0)
      O.Memory.emplace_back(Addr, Val);
  std::sort(O.Memory.begin(), O.Memory.end());
  return O;
}

void expectSameBehaviour(const Module &A, const Module &B,
                         const std::string &Context) {
  Observed OA = observe(A);
  Observed OB = observe(B);
  ASSERT_FALSE(OA.Trapped) << Context;
  ASSERT_FALSE(OB.Trapped) << Context;
  EXPECT_EQ(OA.Printed, OB.Printed) << Context;
  EXPECT_EQ(OA.ReturnValue, OB.ReturnValue) << Context;
  EXPECT_EQ(OA.Memory, OB.Memory) << Context;
}

/// Generator sizing for tests that *interpret* the random programs: the
/// default sizing can exceed the interpreter's step budget (nested
/// near-max-trip loops), which has nothing to do with scheduling.
RandomProgramOptions smallPrograms() {
  RandomProgramOptions RP;
  RP.MaxStmtsPerFunction = 10;
  RP.NumHelpers = 1;
  RP.MaxLoopTrip = 6;
  return RP;
}

/// A diamond: E conditionally branches to X, else falls into A; both
/// arms meet at J.  The branch is never taken at run time (r1 == r1),
/// so the executed path is E -> A -> J.
const char *DiamondIR = R"(
func f {
E:
  LI r1 = 1
  C cr0 = r1, r1
  BT X, cr0, lt
A:
  AI r1 = r1, 1
  B J
X:
  AI r1 = r1, 2
J:
  RET r1
}
)";

} // namespace

//===----------------------------------------------------------------------===
// Trace formation
//===----------------------------------------------------------------------===

TEST(TraceFormationTest, StaticHeuristicFollowsFallThrough) {
  auto M = parseReady(DiamondIR);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);

  TraceFormationOptions Opts; // no profile: static branch-not-taken
  std::vector<SuperblockTrace> Traces = formTraces(F, LI, Opts);

  // The entry chain follows the fall-through E -> A and stops at the
  // join (A is not J's sole predecessor and does not fall through).
  ASSERT_GE(Traces.size(), 1u);
  EXPECT_EQ(Traces[0].Blocks,
            (std::vector<BlockId>{blockByLabel(F, "E"), blockByLabel(F, "A")}));
  EXPECT_TRUE(Traces[0].singleEntry());
}

TEST(TraceFormationTest, MutualMostLikelySelectsHotEdge) {
  auto M = parseReady(DiamondIR);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  const BlockId E = blockByLabel(F, "E"), A = blockByLabel(F, "A"),
                X = blockByLabel(F, "X"), J = blockByLabel(F, "J");

  // A profile claiming the taken arm is hot: E -> X -> J carries 90% of
  // the flow.  Mutual-most-likely must pick the taken edge over the
  // static fall-through.
  ProfileData Profile;
  Profile.record(F, [&] {
    std::vector<uint64_t> C(F.numBlocks(), 0);
    C[E] = 100;
    C[X] = 90;
    C[A] = 10;
    C[J] = 100;
    return C;
  }());
  Profile.recordEdges(F, {{Interpreter::edgeKey(E, X), 90},
                          {Interpreter::edgeKey(E, A), 10},
                          {Interpreter::edgeKey(X, J), 90},
                          {Interpreter::edgeKey(A, J), 10}});

  TraceFormationOptions Opts;
  Opts.Profile = &Profile;
  std::vector<SuperblockTrace> Traces = formTraces(F, LI, Opts);

  ASSERT_GE(Traces.size(), 1u);
  EXPECT_EQ(Traces[0].Blocks, (std::vector<BlockId>{E, X, J}));
  // J is also reachable from A: a side entrance at chain position 2.
  EXPECT_EQ(Traces[0].SideEntrances, (std::vector<unsigned>{2}));
  EXPECT_FALSE(Traces[0].singleEntry());
}

TEST(TraceFormationTest, LoopHeadersAndEntryNeverMidChain) {
  auto M = parseReady(R"(
func g {
E:
  LI r1 = 0
  LI r2 = 10
H:
  C cr0 = r1, r2
  BF EXIT, cr0, lt
BODY:
  AI r1 = r1, 1
  B H
EXIT:
  RET r1
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  ASSERT_TRUE(LI.isReducible());
  const BlockId H = blockByLabel(F, "H"), BODY = blockByLabel(F, "BODY");

  TraceFormationOptions Opts;
  std::vector<SuperblockTrace> Traces = formTraces(F, LI, Opts);

  // E -> H is rejected (H is a header); the loop's own chain H -> BODY
  // is the only trace.  Headers may lead a chain but never sit mid-chain,
  // and the function entry appears in no chain at position >= 1.
  ASSERT_EQ(Traces.size(), 1u);
  EXPECT_EQ(Traces[0].Blocks, (std::vector<BlockId>{H, BODY}));
  for (const SuperblockTrace &T : Traces)
    for (unsigned K = 1; K != T.Blocks.size(); ++K) {
      EXPECT_NE(T.Blocks[K], F.entry());
      bool IsHeader = false;
      for (unsigned L = 0; L != LI.numLoops(); ++L)
        IsHeader |= LI.loop(L).Header == T.Blocks[K];
      EXPECT_FALSE(IsHeader) << "header mid-chain at " << K;
    }
}

TEST(TraceFormationTest, FindFirstSideEntrance) {
  auto M = parseReady(DiamondIR);
  Function &F = *M->functions()[0];
  const BlockId E = blockByLabel(F, "E"), A = blockByLabel(F, "A"),
                X = blockByLabel(F, "X"), J = blockByLabel(F, "J");
  EXPECT_EQ(findFirstSideEntrance(F, {E, A}), -1);
  EXPECT_EQ(findFirstSideEntrance(F, {E, X, J}), 2);
  EXPECT_EQ(findFirstSideEntrance(F, {X, J}), 1); // J entered from A too
}

//===----------------------------------------------------------------------===
// Tail duplication
//===----------------------------------------------------------------------===

TEST(TailDuplicationTest, MakesTraceSingleEntry) {
  auto M = parseReady(DiamondIR);
  auto Ref = parseReady(DiamondIR);
  Function &F = *M->functions()[0];
  const BlockId E = blockByLabel(F, "E"), X = blockByLabel(F, "X"),
                J = blockByLabel(F, "J");

  SuperblockTrace T;
  T.Blocks = {E, X, J};
  unsigned Budget = 64;
  TailDuplicationStats S = duplicateTails(F, T, Budget);

  EXPECT_TRUE(S.Changed);
  EXPECT_EQ(S.ClonedBlocks, 1u);
  EXPECT_EQ(S.ClonedInstrs, 1u); // J holds a single RET
  EXPECT_EQ(Budget, 63u);
  EXPECT_EQ(T.Blocks, (std::vector<BlockId>{E, X, J}));
  EXPECT_TRUE(T.singleEntry());
  EXPECT_EQ(findFirstSideEntrance(F, T.Blocks), -1);
  EXPECT_TRUE(verifyModule(*M).empty());

  // The executed path ran through the duplicated tail's source region;
  // behaviour must be untouched.
  Interpreter IA(*Ref), IB(*M);
  ExecResult RA = IA.run(*Ref->functions()[0]);
  ExecResult RB = IB.run(F);
  ASSERT_FALSE(RA.Trapped);
  ASSERT_FALSE(RB.Trapped);
  EXPECT_EQ(RA.ReturnValue, RB.ReturnValue);
}

TEST(TailDuplicationTest, BudgetTruncatesInsteadOfCloning) {
  auto M = parseReady(DiamondIR);
  Function &F = *M->functions()[0];
  const BlockId E = blockByLabel(F, "E"), X = blockByLabel(F, "X"),
                J = blockByLabel(F, "J");
  std::string Before = moduleToString(*M);

  SuperblockTrace T;
  T.Blocks = {E, X, J};
  unsigned Budget = 0; // the one-instruction tail is already unaffordable
  TailDuplicationStats S = duplicateTails(F, T, Budget);

  EXPECT_EQ(S.TracesTruncated, 1u);
  EXPECT_EQ(S.ClonedInstrs, 0u);
  EXPECT_FALSE(S.Changed);
  EXPECT_EQ(T.Blocks, (std::vector<BlockId>{E, X})); // cut at the entrance
  EXPECT_TRUE(T.singleEntry());
  EXPECT_EQ(moduleToString(*M), Before); // the function is untouched
}

TEST(TailDuplicationTest, NoOpOnSingleEntryTrace) {
  auto M = parseReady(DiamondIR);
  Function &F = *M->functions()[0];
  std::string Before = moduleToString(*M);

  SuperblockTrace T;
  T.Blocks = {blockByLabel(F, "E"), blockByLabel(F, "A")};
  unsigned Budget = 8;
  TailDuplicationStats S = duplicateTails(F, T, Budget);

  EXPECT_FALSE(S.Changed);
  EXPECT_EQ(Budget, 8u);
  EXPECT_EQ(moduleToString(*M), Before);
}

// Property: over random programs, cloned instructions never exceed the
// per-function budget, the result verifies, and behaviour is preserved.
TEST(TailDuplicationTest, GrowthStaysUnderBudgetOnRandomPrograms) {
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    std::string Source = generateRandomMiniC(Seed, smallPrograms());
    auto Base = compileMiniCOrDie(Source);
    auto M = compileMiniCOrDie(Source);

    for (const auto &FPtr : M->functions()) {
      Function &F = *FPtr;
      F.recomputeCFG();
      F.renumberOriginalOrder();
      LoopInfo LI = LoopInfo::compute(F);
      if (!LI.isReducible())
        continue;

      const unsigned Cap = 32;
      unsigned Budget = Cap;
      unsigned Cloned = 0;
      TraceFormationOptions Opts;
      for (SuperblockTrace T : formTraces(F, LI, Opts)) {
        TailDuplicationStats S = duplicateTails(F, T, Budget);
        Cloned += S.ClonedInstrs;
        EXPECT_EQ(findFirstSideEntrance(F, T.Blocks), -1)
            << "seed " << Seed << " fn " << F.name();
      }
      EXPECT_LE(Cloned, Cap) << "seed " << Seed << " fn " << F.name();
      EXPECT_EQ(Cloned, Cap - Budget);
    }
    ASSERT_TRUE(verifyModule(*M).empty()) << "seed " << Seed;
    expectSameBehaviour(*Base, *M, "seed " + std::to_string(Seed));
  }
}

//===----------------------------------------------------------------------===
// Pipeline integration
//===----------------------------------------------------------------------===

TEST(SuperblockPipelineTest, SchedulesSuperblocksOnBranchyLoop) {
  auto M = compileMiniCOrDie(R"(
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 50; i = i + 1) {
    if (i % 4 == 0) s = s + 2;
    s = s + 1;
  }
  print(s);
  return s;
}
)");
  PipelineOptions Opts;
  Opts.EnableSuperblocks = true;
  PipelineStats Stats = scheduleModule(*M, MachineDescription::rs6k(), Opts);

  EXPECT_GE(Stats.TracesFormed, 1u);
  EXPECT_GE(Stats.TraceBlocks, 2u);
  EXPECT_EQ(Stats.TransformsRolledBack + Stats.RegionsRolledBack, 0u);
  EXPECT_TRUE(verifyModule(*M).empty());
}

namespace {

/// 200 random programs through the full pipeline with superblocks on,
/// every function checked by the execution oracle.
void fuzzSuperblocks(unsigned OptLevel, SchedLevel Level) {
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    std::string Source = generateRandomMiniC(Seed, smallPrograms());
    auto M = compileMiniCOrDie(Source);

    PipelineOptions Opts;
    Opts.Opt.Level = OptLevel;
    Opts.Level = Level;
    Opts.EnableSuperblocks = true;
    Opts.EnableOracle = true;
    PipelineStats Stats = scheduleModule(*M, MachineDescription::rs6k(), Opts);

    ASSERT_EQ(Stats.OracleMismatches, 0u)
        << "-O" << OptLevel << " seed " << Seed << "\n" << Source;
    ASSERT_EQ(Stats.VerifierFailures, 0u)
        << "-O" << OptLevel << " seed " << Seed;
    ASSERT_EQ(Stats.RegionsRolledBack + Stats.TransformsRolledBack, 0u)
        << "-O" << OptLevel << " seed " << Seed;
    ASSERT_TRUE(verifyModule(*M).empty())
        << "-O" << OptLevel << " seed " << Seed;
  }
}

} // namespace

TEST(SuperblockFuzzTest, O0UsefulIsOracleClean) {
  fuzzSuperblocks(0, SchedLevel::Useful);
}
TEST(SuperblockFuzzTest, O0SpeculativeIsOracleClean) {
  fuzzSuperblocks(0, SchedLevel::Speculative);
}
TEST(SuperblockFuzzTest, O2UsefulIsOracleClean) {
  fuzzSuperblocks(2, SchedLevel::Useful);
}
TEST(SuperblockFuzzTest, O2SpeculativeIsOracleClean) {
  fuzzSuperblocks(2, SchedLevel::Speculative);
}

namespace {

std::string scheduledIR(const std::string &Source, unsigned RegionJobs) {
  auto M = compileMiniCOrDie(Source);
  PipelineOptions Opts;
  Opts.EnableSuperblocks = true;
  Opts.RegionJobs = RegionJobs;
  scheduleModule(*M, MachineDescription::rs6k(), Opts);
  EXPECT_TRUE(verifyModule(*M).empty());
  return moduleToString(*M);
}

} // namespace

// Tail duplication and superblock scheduling run inside the same wave
// machinery as loop regions, so --region-jobs must stay bit-identical.
TEST(SuperblockDeterminismTest, RegionJobsBitIdenticalWithSuperblocks) {
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    std::string Source = generateRandomMiniC(Seed);
    EXPECT_EQ(scheduledIR(Source, 1), scheduledIR(Source, 4))
        << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===
// Fault injection: trace formation and tail duplication
//===----------------------------------------------------------------------===

class SuperblockFaultTest : public ::testing::TestWithParam<const char *> {
protected:
  void TearDown() override { FaultInjector::instance().disarm(); }
};

// Arm the stage and compile random programs until the fault fires; the
// final module must always behave like the unscheduled original -- either
// the rollback restored it ("trace-form" corruption is structural, the
// verifier catches it) or the oracle proved the mutation harmless before
// commit ("tail-dup" drops a cloned instruction, the lost-duplicate bug
// class only the differential oracle can see).
TEST_P(SuperblockFaultTest, CorruptionIsContained) {
  const char *Stage = GetParam();
  unsigned TotalFaults = 0;
  for (uint64_t Seed = 1; Seed <= 30 && TotalFaults == 0; ++Seed) {
    std::string Source = generateRandomMiniC(Seed, smallPrograms());
    auto Base = compileMiniCOrDie(Source);
    auto Sched = compileMiniCOrDie(Source);

    PipelineOptions Opts;
    Opts.EnableSuperblocks = true;
    Opts.EnableOracle = true;
    FaultInjector::instance().arm(Stage);
    PipelineStats Stats =
        scheduleModule(*Sched, MachineDescription::rs6k(), Opts);
    FaultInjector::instance().disarm();

    ASSERT_TRUE(verifyModule(*Sched).empty())
        << "stage " << Stage << " seed " << Seed;
    if (Stats.FaultsInjected > 0) {
      EXPECT_EQ(Stats.FaultsInjected, 1u);
      TotalFaults += Stats.FaultsInjected;
      if (std::string(Stage) == "trace-form") {
        // Generic corruption is structurally ill-formed: the verifier
        // must have caught it and the transform must have rolled back.
        EXPECT_GE(Stats.VerifierFailures, 1u);
        EXPECT_GE(Stats.TransformsRolledBack, 1u);
        EXPECT_FALSE(Stats.Diags.empty());
      }
    }
    expectSameBehaviour(*Base, *Sched, std::string("stage ") + Stage +
                                           " seed " + std::to_string(Seed));
  }
  EXPECT_GE(TotalFaults, 1u) << "stage " << Stage << " never fired";
}

INSTANTIATE_TEST_SUITE_P(Stages, SuperblockFaultTest,
                         ::testing::Values("trace-form", "tail-dup"));

//===----------------------------------------------------------------------===
// Cache isolation: every superblock knob is in the fingerprint
//===----------------------------------------------------------------------===

TEST(SuperblockCacheTest, KnobsSplitTheOptionsFingerprint) {
  PipelineOptions Base;
  PipelineOptions Sb = Base;
  Sb.EnableSuperblocks = true;
  PipelineOptions Shorter = Sb;
  Shorter.TraceMaxBlocks = 4;
  PipelineOptions Tighter = Sb;
  Tighter.TraceDupBudget = 16;

  const uint64_t FBase = fingerprintOptions(Base);
  const uint64_t FSb = fingerprintOptions(Sb);
  const uint64_t FShorter = fingerprintOptions(Shorter);
  const uint64_t FTighter = fingerprintOptions(Tighter);

  EXPECT_EQ(FBase, fingerprintOptions(Base)); // deterministic
  EXPECT_NE(FBase, FSb);
  EXPECT_NE(FSb, FShorter);
  EXPECT_NE(FSb, FTighter);
  EXPECT_NE(FShorter, FTighter);
}

//===----------------------------------------------------------------------===
// Branch-predictor-aware timing
//===----------------------------------------------------------------------===

namespace {

/// Interprets `main` with tracing on and returns the dynamic trace.
std::vector<TraceEntry> traceOf(const Module &M, Interpreter &I) {
  I.enableTrace(true);
  Function *Main = const_cast<Module &>(M).findFunction("main");
  EXPECT_NE(Main, nullptr);
  ExecResult R = I.run(*Main);
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  return I.trace();
}

const char *BiasedLoopSource = R"(
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 200; i = i + 1) s = s + i;
  return s;
}
)";

} // namespace

TEST(BranchPredictorTest, NoneKeepsCyclesBitIdentical) {
  auto M = compileMiniCOrDie(BiasedLoopSource);
  Interpreter I(*M);
  std::vector<TraceEntry> Trace = traceOf(*M, I);

  TimingSimulator Plain(MachineDescription::rs6k());
  TimingResult A = Plain.simulate(Trace);

  TimingSimulator WithNone(MachineDescription::rs6k());
  BranchPredictorOptions O; // Kind == None
  WithNone.setPredictor(O);
  TimingResult B = WithNone.simulate(Trace);

  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(B.Branches, 0u);
  EXPECT_EQ(B.Mispredicts, 0u);
  EXPECT_EQ(B.BranchStallCycles, 0u);
}

TEST(BranchPredictorTest, OracleNeverWorseThanAlwaysTaken) {
  // A branchy program: the profile-oracle predictor picks each branch's
  // majority direction, so per branch its misses are min(taken, fall) --
  // never more than always-taken's.
  auto M = compileMiniCOrDie(R"(
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 100; i = i + 1) {
    if (i % 8 == 0) s = s + 3;
    else s = s + 1;
  }
  print(s);
  return s;
}
)");
  Interpreter I(*M);
  std::vector<TraceEntry> Trace = traceOf(*M, I);
  ProfileData Profile;
  Function *Main = M->findFunction("main");
  Profile.record(*Main, I.blockCounts());
  Profile.recordEdges(*Main, I.edgeCounts());

  auto Run = [&](PredictorKind K) {
    TimingSimulator Sim(MachineDescription::rs6k());
    BranchPredictorOptions O;
    O.Kind = K;
    O.Profile = &Profile;
    Sim.setPredictor(O);
    return Sim.simulate(Trace);
  };

  TimingResult Taken = Run(PredictorKind::AlwaysTaken);
  TimingResult Bimodal = Run(PredictorKind::Bimodal2Bit);
  TimingResult Oracle = Run(PredictorKind::ProfileOracle);

  EXPECT_GT(Taken.Branches, 0u);
  EXPECT_EQ(Taken.Branches, Bimodal.Branches);
  EXPECT_EQ(Taken.Branches, Oracle.Branches);
  EXPECT_LE(Oracle.Mispredicts, Taken.Mispredicts);
  // Stalls only ever add cycles on top of the interlock-only machine.
  TimingSimulator Plain(MachineDescription::rs6k());
  uint64_t BaseCycles = Plain.simulate(Trace).Cycles;
  for (const TimingResult &R : {Taken, Bimodal, Oracle})
    EXPECT_GE(R.Cycles, BaseCycles);
}

TEST(BranchPredictorTest, BimodalLearnsABiasedBranch) {
  auto M = compileMiniCOrDie(BiasedLoopSource);
  Interpreter I(*M);
  std::vector<TraceEntry> Trace = traceOf(*M, I);

  TimingSimulator Sim(MachineDescription::rs6k());
  BranchPredictorOptions O;
  O.Kind = PredictorKind::Bimodal2Bit;
  Sim.setPredictor(O);
  TimingResult T = Sim.simulate(Trace);

  // The loop-back branch goes the same way ~200 times; after warm-up the
  // 2-bit counters predict it every time.
  EXPECT_GE(T.Branches, 200u);
  EXPECT_LE(T.Mispredicts, T.Branches / 10);
  EXPECT_EQ(T.BranchStallCycles > 0, T.Mispredicts > 0);
}

//===- tests/heuristics_test.cpp - D / CP heuristic tests ------------------===//
//
// The Section 5.2 priority functions, checked against hand computations on
// the paper's running example.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "analysis/Region.h"
#include "ir/Parser.h"
#include "sched/Heuristics.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

struct LoopFixture {
  std::unique_ptr<Module> M;
  Function *F;
  LoopInfo LI;
  SchedRegion R;
  DataDeps DD;
  std::vector<unsigned> Cur;
  Heuristics H;

  explicit LoopFixture(const char *Text, int LoopIdx = 0)
      : M(parseModuleOrDie(Text)), F(M->functions()[0].get()),
        LI(LoopInfo::compute(*F)),
        R(SchedRegion::build(*F, LI, LoopIdx)),
        DD(DataDeps::compute(*F, R, MachineDescription::rs6k())) {
    Cur.resize(DD.numNodes());
    for (unsigned N = 0; N != DD.numNodes(); ++N)
      Cur[N] = DD.ddgNode(N).RegionNode;
    H = computeHeuristics(*F, DD, MachineDescription::rs6k(), Cur);
  }

  unsigned nodeOf(const char *Label, unsigned Pos) const {
    for (BlockId B = 0; B != F->numBlocks(); ++B)
      if (F->block(B).label() == Label) {
        int N = DD.nodeOfInstr(F->block(B).instrs()[Pos]);
        EXPECT_GE(N, 0);
        return static_cast<unsigned>(N);
      }
    ADD_FAILURE() << "no block " << Label;
    return 0;
  }
};

const char *MinmaxBL1AndBL10 = R"(
func f {
PRE:
  LI r31 = 1000
BL1:
  L r12 = mem[r31 + 4]
  LU r0, r31 = mem[r31 + 8]
  C cr7 = r12, r0
  BF BL10, cr7, gt
BL2:
  NOP
BL10:
  AI r29 = r29, 2
  C cr4 = r29, r27
  BT BL1, cr4, lt
EXIT:
  RET
}
)";

} // namespace

TEST(HeuristicsTest, DelayHeuristicBL1) {
  LoopFixture X(MinmaxBL1AndBL10);
  // BL1: L(I1), LU(I2), C(I3), BF(I4) with intra-block edges
  // I2 ->(1) I3 ->(3) I4 and the anti edge I1 -> I2 (I1->I3 is transitive).
  unsigned I1 = X.nodeOf("BL1", 0), I2 = X.nodeOf("BL1", 1),
           I3 = X.nodeOf("BL1", 2), I4 = X.nodeOf("BL1", 3);
  // D(I4) = 0 (no successors).
  EXPECT_EQ(X.H.D[I4], 0u);
  // D(I3) = D(I4) + 3.
  EXPECT_EQ(X.H.D[I3], 3u);
  // D(I2) = D(I3) + 1 = 4.
  EXPECT_EQ(X.H.D[I2], 4u);
  // D(I1) = via the anti edge to I2 with no delay: D(I2) + 0 = 4.
  EXPECT_EQ(X.H.D[I1], 4u);
}

TEST(HeuristicsTest, CriticalPathBL1) {
  LoopFixture X(MinmaxBL1AndBL10);
  unsigned I1 = X.nodeOf("BL1", 0), I2 = X.nodeOf("BL1", 1),
           I3 = X.nodeOf("BL1", 2), I4 = X.nodeOf("BL1", 3);
  // CP(I4) = E = 1; CP(I3) = CP(I4) + 3 + 1 = 5;
  // CP(I2) = CP(I3) + 1 + 1 = 7; CP(I1) = CP(I2) + 0 + 1 = 8.
  EXPECT_EQ(X.H.CP[I4], 1u);
  EXPECT_EQ(X.H.CP[I3], 5u);
  EXPECT_EQ(X.H.CP[I2], 7u);
  EXPECT_EQ(X.H.CP[I1], 8u);
}

TEST(HeuristicsTest, BL10MatchesPaperPriorities) {
  LoopFixture X(MinmaxBL1AndBL10);
  // BL10: AI -> C (0 delay) -> BT (3): D(AI) = 3, D(C) = 3, D(BT) = 0.
  unsigned AI = X.nodeOf("BL10", 0), C = X.nodeOf("BL10", 1),
           BT = X.nodeOf("BL10", 2);
  EXPECT_EQ(X.H.D[AI], 3u);
  EXPECT_EQ(X.H.D[C], 3u);
  EXPECT_EQ(X.H.D[BT], 0u);
  // CP: BT = 1, C = 1+3+1 = 5, AI = 5+0+1 = 6.
  EXPECT_EQ(X.H.CP[BT], 1u);
  EXPECT_EQ(X.H.CP[C], 5u);
  EXPECT_EQ(X.H.CP[AI], 6u);
}

TEST(HeuristicsTest, MultiCycleOpsExtendCP) {
  LoopFixture X(R"(
func f {
L0:
  MUL r3 = r1, r2
  AI r4 = r3, 1
  C cr0 = r4, r9
  BT L0, cr0, lt
EXIT:
  RET
}
)");
  unsigned Mul = X.nodeOf("L0", 0), Ai = X.nodeOf("L0", 1);
  MachineDescription MD = MachineDescription::rs6k();
  // CP(AI) = CP(C) + 1 = (CP(BT)+3+1) + 1 = 6; CP(MUL) = 6 + E(MUL).
  EXPECT_EQ(X.H.CP[Ai], 6u);
  EXPECT_EQ(X.H.CP[Mul], 6u + MD.execTime(Opcode::MUL));
  // D is about delays only, not execution times.
  EXPECT_EQ(X.H.D[Mul], 3u);
}

TEST(HeuristicsTest, LocalityExcludesInterblockEdges) {
  // The definitions are "computed locally (within a basic block)": an
  // instruction whose only consumer sits in another block gets D = 0.
  LoopFixture X(R"(
func f {
L0:
  C cr0 = r1, r2
  B L1
L1:
  BT L0, cr0, lt
EXIT:
  RET
}
)");
  unsigned C = X.nodeOf("L0", 0);
  EXPECT_EQ(X.H.D[C], 0u);   // the dependent branch is in L1
  EXPECT_EQ(X.H.CP[C], 1u);
}

TEST(HeuristicsTest, PlacementVectorMovesLocality) {
  // After a motion, recomputing with the updated placement changes which
  // edges count as local.
  LoopFixture X(R"(
func f {
L0:
  C cr0 = r1, r2
  B L1
L1:
  BT L0, cr0, lt
EXIT:
  RET
}
)");
  unsigned C = X.nodeOf("L0", 0), BT = X.nodeOf("L1", 0);
  // Pretend BT moved into L0 (it never would -- branches do not move --
  // but the heuristic must follow the placement vector regardless).
  std::vector<unsigned> Cur = X.Cur;
  Cur[BT] = Cur[C];
  Heuristics H2 =
      computeHeuristics(*X.F, X.DD, MachineDescription::rs6k(), Cur);
  EXPECT_EQ(H2.D[C], 3u);
}

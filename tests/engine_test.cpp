//===- tests/engine_test.cpp - List-scheduling engine tests ----------------===//
//
// Direct tests of the cycle-by-cycle engine (Section 5.1's top-level
// process): unit capacity, multi-cycle occupancy, terminator gating,
// external candidates, dispositions, the speculative veto callback, and
// the priority-rule orderings.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "analysis/Region.h"
#include "ir/Parser.h"
#include "sched/Heuristics.h"
#include "sched/ListScheduler.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

/// A fully-wired engine over the top-level region of a parsed function.
struct EngineFixture {
  std::unique_ptr<Module> M;
  Function *F;
  LoopInfo LI;
  SchedRegion R;
  MachineDescription MD;
  DataDeps DD;
  std::vector<unsigned> Cur;
  Heuristics H;

  explicit EngineFixture(const char *Text,
                         MachineDescription Machine =
                             MachineDescription::rs6k())
      : M(parseModuleOrDie(Text)), F(M->functions()[0].get()),
        LI(LoopInfo::compute(*F)), R(SchedRegion::build(*F, LI, -1)),
        MD(std::move(Machine)),
        DD(DataDeps::compute(*F, R, MD)) {
    Cur.resize(DD.numNodes());
    for (unsigned N = 0; N != DD.numNodes(); ++N)
      Cur[N] = DD.ddgNode(N).RegionNode;
    H = computeHeuristics(*F, DD, MD, Cur);
  }

  std::vector<unsigned> ownNodes(const char *Label) const {
    std::vector<unsigned> Own;
    for (BlockId B = 0; B != F->numBlocks(); ++B)
      if (F->block(B).label() == Label)
        for (InstrId I : F->block(B).instrs())
          Own.push_back(static_cast<unsigned>(DD.nodeOfInstr(I)));
    return Own;
  }

  EngineResult
  run(const char *Label, std::vector<EngineCandidate> External = {},
      PriorityOrder Order = PriorityOrder::Paper,
      std::function<PredDisposition(unsigned)> Disp = nullptr,
      std::function<bool(unsigned)> Spec = nullptr) {
    ListScheduler Engine(*F, DD, MD, H, Order);
    if (!Disp)
      Disp = [](unsigned) { return PredDisposition::Fixed; };
    if (!Spec)
      Spec = [](unsigned) { return true; };
    return Engine.run(ownNodes(Label), External, Disp, Spec);
  }

  Opcode opcodeOfNode(unsigned Node) const {
    return F->instr(DD.ddgNode(Node).Instr).opcode();
  }
};

} // namespace

TEST(EngineTest, SingleUnitSerializesFixedPoint) {
  EngineFixture X(R"(
func f {
B0:
  LI r1 = 1
  LI r2 = 2
  LI r3 = 3
  RET
}
)");
  EngineResult S = X.run("B0");
  ASSERT_EQ(S.Order.size(), 4u);
  // One fixed-point unit: the three LIs issue in consecutive cycles.
  EXPECT_EQ(S.Cycles[0], 0u);
  EXPECT_EQ(S.Cycles[1], 1u);
  EXPECT_EQ(S.Cycles[2], 2u);
}

TEST(EngineTest, WiderMachineIssuesInParallel) {
  EngineFixture X(R"(
func f {
B0:
  LI r1 = 1
  LI r2 = 2
  LI r3 = 3
  RET
}
)",
                  MachineDescription::superscalar(3, 1, 1));
  EngineResult S = X.run("B0");
  // Three independent LIs, three fixed units: all at cycle 0.
  EXPECT_EQ(S.Cycles[0], 0u);
  EXPECT_EQ(S.Cycles[1], 0u);
  EXPECT_EQ(S.Cycles[2], 0u);
}

TEST(EngineTest, MultiCycleOccupiesUnit) {
  EngineFixture X(R"(
func f {
B0:
  MUL r3 = r1, r2
  LI r4 = 4
  RET
}
)");
  EngineResult S = X.run("B0");
  // The MUL is scheduled first (original order, both D=0); the LI must
  // wait for the single fixed unit to free.
  MachineDescription MD = MachineDescription::rs6k();
  ASSERT_GE(S.Order.size(), 2u);
  EXPECT_EQ(X.opcodeOfNode(S.Order[0]), Opcode::MUL);
  EXPECT_EQ(S.Cycles[0], 0u);
  EXPECT_EQ(S.Cycles[1], MD.execTime(Opcode::MUL));
}

TEST(EngineTest, DelaySlotsFilledByIndependentWork) {
  EngineFixture X(R"(
func f {
B0:
  L r2 = mem[r1 + 0]
  AI r3 = r2, 1
  LI r4 = 7
  LI r5 = 8
  RET
}
)");
  EngineResult S = X.run("B0");
  // Load at 0; the dependent AI must wait until cycle 2 (1 exec + 1
  // delay); the independent LIs fill cycles 1 and 2... one of them lands
  // in the delay slot at cycle 1.
  ASSERT_EQ(S.Order.size(), 5u);
  EXPECT_EQ(X.opcodeOfNode(S.Order[0]), Opcode::L);
  EXPECT_EQ(X.opcodeOfNode(S.Order[1]), Opcode::LI);
  EXPECT_EQ(S.Cycles[1], 1u);
}

TEST(EngineTest, TerminatorStaysLast) {
  EngineFixture X(R"(
func f {
B0:
  C cr0 = r1, r2
  LI r3 = 3
  LI r4 = 4
  BT B1, cr0, lt
B1:
  RET
}
)");
  EngineResult S = X.run("B0");
  ASSERT_EQ(S.Order.size(), 4u);
  // Even though the BT could issue at cycle 4 < after-the-LIs in some
  // orders, it must be positionally last.
  EXPECT_EQ(X.opcodeOfNode(S.Order.back()), Opcode::BT);
}

TEST(EngineTest, ExternalCandidatePickedIntoDelaySlot) {
  EngineFixture X(R"(
func f {
B0:
  C cr0 = r1, r2
  BT B1, cr0, lt
B1:
  LI r5 = 5
  RET
}
)");
  // Offer B1's LI as a useful external candidate while scheduling B0.
  std::vector<unsigned> B1Nodes = X.ownNodes("B1");
  EngineCandidate C;
  C.DDGNode = B1Nodes[0]; // the LI
  C.Useful = true;
  C.Speculative = false;
  EngineResult S = X.run("B0", {C});
  // The LI fills one of the three compare->branch delay slots.
  ASSERT_EQ(S.Order.size(), 3u);
  EXPECT_EQ(X.opcodeOfNode(S.Order[1]), Opcode::LI);
  EXPECT_LT(S.Cycles[1], S.Cycles[2]);
}

TEST(EngineTest, ExternalsNeverForced) {
  // An external whose predecessors stay blocked is simply not scheduled.
  EngineFixture X(R"(
func f {
B0:
  LI r1 = 1
  B B1
B1:
  ST mem[r9 + 0] = r1
  L r2 = mem[r9 + 0]
  RET r2
}
)");
  std::vector<unsigned> B1Nodes = X.ownNodes("B1");
  // Offer the load (depends on the store, which is not offered).
  EngineCandidate C;
  C.DDGNode = B1Nodes[1];
  C.Useful = true;
  C.Speculative = false;
  auto Disp = [&](unsigned Pred) {
    // The store is "blocked": it stays in B1.
    return Pred == B1Nodes[0] ? PredDisposition::Blocked
                              : PredDisposition::Fixed;
  };
  EngineResult S = X.run("B0", {C}, PriorityOrder::Paper, Disp);
  // Only B0's own two instructions were scheduled.
  EXPECT_EQ(S.Order.size(), 2u);
}

TEST(EngineTest, SpecCheckVetoDropsCandidate) {
  EngineFixture X(R"(
func f {
B0:
  C cr0 = r1, r2
  BT B1, cr0, lt
B1:
  LI r5 = 5
  LI r6 = 6
  RET
}
)");
  std::vector<unsigned> B1Nodes = X.ownNodes("B1");
  std::vector<EngineCandidate> Ext;
  for (int K = 0; K != 2; ++K) {
    EngineCandidate C;
    C.DDGNode = B1Nodes[K];
    C.Useful = false;
    C.Speculative = true;
    Ext.push_back(C);
  }
  // Veto the first LI; allow the second.
  unsigned Vetoed = B1Nodes[0];
  unsigned Checks = 0;
  auto Spec = [&](unsigned Node) {
    ++Checks;
    return Node != Vetoed;
  };
  EngineResult S = X.run("B0", Ext, PriorityOrder::Paper, nullptr, Spec);
  EXPECT_GE(Checks, 1u);
  // The vetoed LI is absent; the allowed one may appear.
  for (unsigned Node : S.Order)
    EXPECT_NE(Node, Vetoed);
}

TEST(EngineTest, UsefulBeatsSpeculativeAtEqualHeuristics) {
  EngineFixture X(R"(
func f {
B0:
  C cr0 = r1, r2
  BT B2, cr0, lt
B1:
  LI r5 = 5
B2:
  LI r6 = 6
  RET
}
)");
  // Offer B2's LI as useful and B1's LI as speculative; with identical D
  // and CP, rules 1/2 must pick the useful one first.
  unsigned UsefulNode = X.ownNodes("B2")[0];
  unsigned SpecNode = X.ownNodes("B1")[0];
  std::vector<EngineCandidate> Ext(2);
  Ext[0].DDGNode = SpecNode;
  Ext[0].Useful = false;
  Ext[0].Speculative = true;
  Ext[1].DDGNode = UsefulNode;
  Ext[1].Useful = true;
  Ext[1].Speculative = false;
  EngineResult S = X.run("B0", Ext);
  // Both fit in the delay slots; the useful one must be scheduled first.
  size_t PosUseful = ~size_t(0), PosSpec = ~size_t(0);
  for (size_t K = 0; K != S.Order.size(); ++K) {
    if (S.Order[K] == UsefulNode)
      PosUseful = K;
    if (S.Order[K] == SpecNode)
      PosSpec = K;
  }
  ASSERT_NE(PosUseful, ~size_t(0));
  ASSERT_NE(PosSpec, ~size_t(0));
  EXPECT_LT(PosUseful, PosSpec);
}

TEST(EngineTest, SourceOrderFallsBackToOriginalOrder) {
  EngineFixture X(R"(
func f {
B0:
  LI r1 = 1
  L r2 = mem[r9 + 0]
  AI r3 = r2, 1
  LI r4 = 4
  RET
}
)");
  EngineResult Paper = X.run("B0", {}, PriorityOrder::Paper);
  EngineResult Src = X.run("B0", {}, PriorityOrder::SourceOrder);
  // Source order keeps the program order among ready instructions: the
  // LI r4 does not jump ahead of the AI.
  std::vector<Opcode> SrcOps;
  for (unsigned Node : Src.Order)
    SrcOps.push_back(X.opcodeOfNode(Node));
  EXPECT_EQ(SrcOps[0], Opcode::LI);
  EXPECT_EQ(SrcOps[1], Opcode::L);
  // Under the paper order the load is hoisted first (D = 1 beats D = 0).
  EXPECT_EQ(X.opcodeOfNode(Paper.Order[0]), Opcode::L);
}

TEST(EngineTest, OnScheduleCallbackSeesExternals) {
  EngineFixture X(R"(
func f {
B0:
  C cr0 = r1, r2
  BT B1, cr0, lt
B1:
  LI r5 = 5
  RET
}
)");
  unsigned ExtNode = X.ownNodes("B1")[0];
  EngineCandidate C;
  C.DDGNode = ExtNode;
  C.Useful = true;
  C.Speculative = false;
  std::vector<std::pair<unsigned, bool>> Seen;
  ListScheduler Engine(*X.F, X.DD, X.MD, X.H);
  Engine.run(
      X.ownNodes("B0"), {C},
      [](unsigned) { return PredDisposition::Fixed; },
      [](unsigned) { return true; },
      [&](unsigned Node, bool External) { Seen.emplace_back(Node, External); });
  // Every scheduled node reported once; the external flagged as such.
  ASSERT_EQ(Seen.size(), 3u);
  unsigned Externals = 0;
  for (auto &[Node, External] : Seen)
    if (External) {
      ++Externals;
      EXPECT_EQ(Node, ExtNode);
    }
  EXPECT_EQ(Externals, 1u);
}

TEST(EngineTest, MakespanCoversOwnInstructions) {
  EngineFixture X(R"(
func f {
B0:
  L r2 = mem[r1 + 0]
  AI r3 = r2, 1
  RET r3
}
)");
  EngineResult S = X.run("B0");
  // L@0 (done 1), AI@2 (done 3), RET@4 on the branch unit (r3 ready 3...).
  EXPECT_GE(S.Makespan, 4u);
}

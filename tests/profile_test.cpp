//===- tests/profile_test.cpp - Profile-guided speculation tests -----------===//
//
// The paper (Section 1): global scheduling "is capable of taking advantage
// of the branch probabilities, whenever available (e.g. computed by
// profiling)".  Speculative candidates from hotter blocks win ties.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "analysis/Region.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "machine/Timing.h"
#include "sched/GlobalScheduler.h"
#include "sched/Profile.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

// A dispatch shape with two speculative candidates of identical D/CP: the
// compare of the likely arm and of the unlikely arm.  Only one fits in
// ENTRY's last delay slot.
const char *BiasedBranch = R"(
func f {
ENTRY:
  L r1 = mem[r9 + 0]
  C cr0 = r1, r8
  BF COLD, cr0, gt
HOT:
  C cr1 = r1, r10
  BF HOT2, cr1, gt
HOT1:
  AI r2 = r2, 1
HOT2:
  B TAIL
COLD:
  C cr2 = r1, r11
  BF TAIL, cr2, gt
COLD1:
  AI r3 = r3, 1
TAIL:
  AI r4 = r4, 1
  C cr4 = r4, r12
  BT ENTRY, cr4, lt
OUT:
  RET r2
}
)";

BlockId blockByLabel(const Function &F, const std::string &Label) {
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    if (F.block(B).label() == Label)
      return B;
  ADD_FAILURE() << "no block " << Label;
  return InvalidId;
}

/// Schedules the loop region with an optional profile and returns the
/// opcode-count of compares in ENTRY (how many arms' compares were
/// hoisted) plus which CR the first hoisted compare defines.
std::vector<Reg> hoistedCompareCRs(const ProfileData *Profile) {
  auto M = parseModuleOrDie(BiasedBranch);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, 0);
  GlobalSchedOptions Opts;
  Opts.Level = SchedLevel::Speculative;
  Opts.Profile = Profile;
  GlobalScheduler GS(MachineDescription::rs6k(), Opts);
  GS.scheduleRegion(F, R);

  std::vector<Reg> CRs;
  BlockId Entry = blockByLabel(F, "ENTRY");
  for (InstrId I : F.block(Entry).instrs())
    if (F.instr(I).opcode() == Opcode::C)
      CRs.push_back(F.instr(I).defs()[0]);
  return CRs;
}

} // namespace

TEST(ProfileTest, RecordAndQuery) {
  auto M = parseModuleOrDie(BiasedBranch);
  Function &F = *M->functions()[0];
  ProfileData P;
  EXPECT_TRUE(P.empty());
  std::vector<uint64_t> Counts(F.numBlocks(), 0);
  Counts[blockByLabel(F, "HOT")] = 900;
  Counts[blockByLabel(F, "COLD")] = 100;
  P.record(F, Counts);
  EXPECT_TRUE(P.hasFunction("f"));
  EXPECT_EQ(P.frequency(F, blockByLabel(F, "HOT")), 900u);
  EXPECT_EQ(P.frequency(F, blockByLabel(F, "COLD")), 100u);
  // Unknown blocks and functions read as zero.
  EXPECT_EQ(P.frequency(F, F.numBlocks() + 5), 0u);
}

TEST(ProfileTest, HotArmWinsTheDelaySlot) {
  auto M = parseModuleOrDie(BiasedBranch);
  Function &F = *M->functions()[0];
  Reg HotCR = Reg::cr(1);  // HOT's compare defines cr1
  Reg ColdCR = Reg::cr(2); // COLD's defines cr2

  // Without a profile, original order decides: HOT's compare (earlier in
  // the program) is picked first.  ENTRY ends up with its own compare
  // (cr0), the usefully hoisted latch compare (cr4), then the speculative
  // pick.
  std::vector<Reg> NoProfile = hoistedCompareCRs(nullptr);
  ASSERT_GE(NoProfile.size(), 3u);
  EXPECT_EQ(NoProfile[2], HotCR);

  // Profile saying COLD is the hot path flips the choice.
  ProfileData P;
  std::vector<uint64_t> Counts(F.numBlocks(), 0);
  Counts[blockByLabel(F, "HOT")] = 10;
  Counts[blockByLabel(F, "COLD")] = 990;
  P.record(F, Counts);
  std::vector<Reg> WithProfile = hoistedCompareCRs(&P);
  ASSERT_GE(WithProfile.size(), 3u);
  EXPECT_EQ(WithProfile[2], ColdCR);
}

TEST(ProfileTest, ProfileGuidedScheduleStaysCorrect) {
  // Collect a real profile with the interpreter, reschedule, compare
  // behaviour and check the biased path got faster (or at least no
  // slower).
  auto Run = [&](const ProfileData *Profile, uint64_t &CyclesOut) {
    auto M = parseModuleOrDie(BiasedBranch);
    Function &F = *M->functions()[0];
    LoopInfo LI = LoopInfo::compute(F);
    SchedRegion R = SchedRegion::build(F, LI, 0);
    GlobalSchedOptions Opts;
    Opts.Level = SchedLevel::Speculative;
    Opts.Profile = Profile;
    GlobalScheduler GS(MachineDescription::rs6k(), Opts);
    GS.scheduleRegion(F, R);

    Interpreter I(*M);
    I.enableTrace(true);
    // r1 loaded from mem[r9]; choose data so r1 > r8 is FALSE -> COLD.
    I.storeWord(500, 0);
    I.setReg(Reg::gpr(9), 500);
    I.setReg(Reg::gpr(8), 10);  // r1=0 <= 10: BF taken -> COLD every time
    I.setReg(Reg::gpr(10), 0);
    I.setReg(Reg::gpr(11), 0);
    I.setReg(Reg::gpr(12), 200); // iterations
    ExecResult E = I.run(F);
    EXPECT_FALSE(E.Trapped) << E.TrapReason;
    TimingSimulator Sim(MachineDescription::rs6k());
    CyclesOut = Sim.simulate(I.trace()).Cycles;
    return E.ReturnValue;
  };

  // Profile the cold-biased run.
  ProfileData P;
  {
    auto M = parseModuleOrDie(BiasedBranch);
    Function &F = *M->functions()[0];
    Interpreter I(*M);
    I.storeWord(500, 0);
    I.setReg(Reg::gpr(9), 500);
    I.setReg(Reg::gpr(8), 10);
    I.setReg(Reg::gpr(12), 200);
    I.run(F);
    P.record(F, I.blockCounts());
  }

  uint64_t CyclesBlind = 0, CyclesGuided = 0;
  int64_t R1 = Run(nullptr, CyclesBlind);
  int64_t R2 = Run(&P, CyclesGuided);
  EXPECT_EQ(R1, R2);
  EXPECT_LE(CyclesGuided, CyclesBlind);
}

//===- tests/trace_test.cpp - Observability subsystem tests ----------------===//
//
// Tests for src/obs/ (ctest label "obs"; scripts/check.sh also runs this
// executable under ASan and TSan):
//
//  1. Golden decision-log tests: small .gis fixtures under tests/data/ are
//     scheduled with CollectDecisions and the rendered `--explain` log is
//     compared, through a normalizing differ, against a checked-in golden
//     file.  Regenerate with GIS_UPDATE_GOLDENS=1 after an intentional
//     format or heuristic change.
//
//  2. Determinism: the decision log and the counter registry are
//     bit-identical across --region-jobs widths.
//
//  3. Trace format: the Chrome-trace JSON parses, every 'B' has a matching
//     'E' on its own thread, span nesting respects the
//     pipeline -> stage -> wave -> region -> block hierarchy, and the span
//     multiset is --region-jobs invariant.
//
//  4. Zero perturbation: the scheduled IR (and its 128-bit hash) is
//     bit-identical with tracing on or off and with the obs collection
//     flags on or off.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "obs/Counters.h"
#include "obs/Decision.h"
#include "obs/Trace.h"
#include "sched/Pipeline.h"
#include "support/Hashing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace gis;

#ifndef GIS_TEST_DATA_DIR
#error "GIS_TEST_DATA_DIR must be defined by the build"
#endif

namespace {

//===----------------------------------------------------------------------===
// Fixtures and helpers
//===----------------------------------------------------------------------===

std::string dataPath(const std::string &Name) {
  return std::string(GIS_TEST_DATA_DIR) + "/" + Name;
}

std::string readFileOrDie(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// The fixture .gis files; each has a matching <name>.explain.txt golden.
const char *const Fixtures[] = {"obs_diamond", "obs_loop_spec"};

PipelineOptions obsOptions(unsigned RegionJobs = 1) {
  PipelineOptions Opts;
  Opts.CollectCounters = true;
  Opts.CollectDecisions = true;
  Opts.RegionJobs = RegionJobs;
  return Opts;
}

/// Parses a fixture, schedules it, and returns the printed IR plus stats.
struct RunResult {
  std::string IR;
  PipelineStats Stats;
};

RunResult runFixture(const std::string &Name, const PipelineOptions &Opts) {
  std::unique_ptr<Module> M =
      parseModuleOrDie(readFileOrDie(dataPath(Name + ".gis")));
  RunResult R;
  R.Stats = scheduleModule(*M, MachineDescription::rs6k(), Opts);
  EXPECT_TRUE(verifyModule(*M).empty()) << Name;
  R.IR = moduleToString(*M);
  return R;
}

std::string renderedLog(const std::vector<obs::Decision> &Log) {
  std::ostringstream SS;
  obs::renderDecisions(Log, SS);
  return SS.str();
}

/// The normalizing differ: strips trailing whitespace from every line and
/// trailing blank lines from the document, so golden comparisons are
/// stable against editors and platform line-ending quirks.
std::string normalizeLog(const std::string &Text) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : Text) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else if (C != '\r') {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Lines.push_back(Cur);
  for (std::string &L : Lines)
    while (!L.empty() && (L.back() == ' ' || L.back() == '\t'))
      L.pop_back();
  while (!Lines.empty() && Lines.back().empty())
    Lines.pop_back();
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

//===----------------------------------------------------------------------===
// A minimal JSON reader, just enough to validate the trace export.
//===----------------------------------------------------------------------===

class JsonReader {
public:
  explicit JsonReader(std::string_view Text) : S(Text) {}

  /// Parses one complete JSON document; returns false on any syntax error.
  bool parse() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  bool value() {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }
  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // closing quote
    return true;
  }
  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }
  bool literal(std::string_view L) {
    if (S.substr(Pos, L.size()) != L)
      return false;
    Pos += L.size();
    return true;
  }
  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }
  void skipWs() {
    while (Pos < S.size() &&
           (S[Pos] == ' ' || S[Pos] == '\n' || S[Pos] == '\t' ||
            S[Pos] == '\r'))
      ++Pos;
  }

  std::string_view S;
  size_t Pos = 0;
};

/// Runs a fixture with the tracer enabled and returns the collected
/// events.  The tracer is process-global, so tests that use it serialize
/// through gtest's single-threaded runner.
std::vector<obs::TraceEvent> tracedRun(const std::string &Name,
                                       unsigned RegionJobs,
                                       std::string *JsonOut = nullptr) {
  obs::Tracer &Tr = obs::Tracer::instance();
  Tr.enable();
  runFixture(Name, obsOptions(RegionJobs));
  Tr.disable();
  std::vector<obs::TraceEvent> Events = Tr.snapshot();
  if (JsonOut) {
    std::ostringstream SS;
    Tr.exportChromeJson(SS);
    *JsonOut = SS.str();
  }
  Tr.clear();
  return Events;
}

//===----------------------------------------------------------------------===
// 1. Golden decision-log tests
//===----------------------------------------------------------------------===

TEST(DecisionLogGolden, MatchesGoldenFiles) {
  const bool Update = std::getenv("GIS_UPDATE_GOLDENS") != nullptr;
  for (const char *Name : Fixtures) {
    RunResult R = runFixture(Name, obsOptions());
    std::string Log = normalizeLog(renderedLog(R.Stats.Decisions));
    EXPECT_FALSE(Log.empty()) << Name << ": fixture produced no decisions";
    std::string GoldenPath = dataPath(std::string(Name) + ".explain.txt");
    if (Update) {
      std::ofstream Out(GoldenPath, std::ios::binary);
      ASSERT_TRUE(Out.good()) << "cannot write " << GoldenPath;
      Out << Log;
      continue;
    }
    std::string Golden = normalizeLog(readFileOrDie(GoldenPath));
    EXPECT_EQ(Golden, Log)
        << Name << ": decision log diverged from golden; run with "
        << "GIS_UPDATE_GOLDENS=1 after verifying the change is intended";
  }
}

TEST(DecisionLogGolden, EveryLineCarriesRuleAndClass) {
  RunResult R = runFixture("obs_loop_spec", obsOptions());
  std::string Log = renderedLog(R.Stats.Decisions);
  std::istringstream In(Log);
  std::string Line;
  size_t Lines = 0;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    ++Lines;
    EXPECT_NE(Line.find("rule="), std::string::npos) << Line;
    EXPECT_NE(Line.find("cands=["), std::string::npos) << Line;
    EXPECT_NE(Line.find("pick i"), std::string::npos) << Line;
    bool HasClass = Line.find("(own)") != std::string::npos ||
                    Line.find("(useful from") != std::string::npos ||
                    Line.find("(speculative from") != std::string::npos;
    EXPECT_TRUE(HasClass) << Line;
  }
  EXPECT_EQ(Lines, R.Stats.Decisions.size());
}

//===----------------------------------------------------------------------===
// 2. Determinism across --region-jobs
//===----------------------------------------------------------------------===

TEST(DecisionLogDeterminism, RegionJobsInvariant) {
  for (const char *Name : Fixtures) {
    RunResult Seq = runFixture(Name, obsOptions(1));
    RunResult Par = runFixture(Name, obsOptions(8));
    EXPECT_EQ(Seq.IR, Par.IR) << Name;
    EXPECT_EQ(renderedLog(Seq.Stats.Decisions),
              renderedLog(Par.Stats.Decisions))
        << Name;
    EXPECT_TRUE(Seq.Stats.Counters == Par.Stats.Counters) << Name;
  }
}

//===----------------------------------------------------------------------===
// 3. Trace format
//===----------------------------------------------------------------------===

TEST(TraceFormat, ChromeJsonParses) {
  std::string Json;
  std::vector<obs::TraceEvent> Events = tracedRun("obs_loop_spec", 1, &Json);
  EXPECT_FALSE(Events.empty());
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  JsonReader Reader(Json);
  EXPECT_TRUE(Reader.parse()) << "trace JSON does not parse:\n" << Json;
  // Every span name that begins must also end somewhere in the export.
  for (const char *Name : {"pipeline", "wave", "region", "block"})
    EXPECT_NE(Json.find(std::string("\"name\": \"") + Name + "\""),
              std::string::npos)
        << Name;
}

/// Per-thread 'B'/'E' matching: events of one thread form balanced,
/// properly nested spans.
TEST(TraceFormat, SpansBalancePerThread) {
  std::vector<obs::TraceEvent> Events = tracedRun("obs_loop_spec", 8);
  std::map<unsigned, std::vector<const obs::TraceEvent *>> Stacks;
  for (const obs::TraceEvent &E : Events) {
    auto &Stack = Stacks[E.Tid];
    if (E.Ph == 'B') {
      Stack.push_back(&E);
    } else if (E.Ph == 'E') {
      ASSERT_FALSE(Stack.empty())
          << "'E' " << E.Name << " with no open span on tid " << E.Tid;
      EXPECT_STREQ(Stack.back()->Name, E.Name) << "tid " << E.Tid;
      EXPECT_STREQ(Stack.back()->Cat, E.Cat) << "tid " << E.Tid;
      Stack.pop_back();
    }
  }
  for (const auto &KV : Stacks)
    EXPECT_TRUE(KV.second.empty())
        << KV.second.size() << " unclosed span(s) on tid " << KV.first;
}

/// At --region-jobs 1 everything runs on one thread, so the full
/// hierarchy is visible on a single stack: stage spans open under the
/// pipeline span, waves under a stage, regions under a wave, blocks under
/// a region (global) or the local stage, and cycle-level instants under a
/// block.
TEST(TraceFormat, NestingRespectsHierarchy) {
  std::vector<obs::TraceEvent> Events = tracedRun("obs_loop_spec", 1);
  std::vector<const obs::TraceEvent *> Stack;
  auto Enclosing = [&](const char *Name) {
    return std::any_of(Stack.begin(), Stack.end(),
                       [&](const obs::TraceEvent *E) {
                         return std::string_view(E->Name) == Name;
                       });
  };
  auto EnclosingCat = [&](const char *Cat) {
    return std::any_of(Stack.begin(), Stack.end(),
                       [&](const obs::TraceEvent *E) {
                         return std::string_view(E->Cat) == Cat;
                       });
  };
  size_t Blocks = 0, Picks = 0;
  for (const obs::TraceEvent &E : Events) {
    std::string_view Name = E.Name;
    std::string_view Cat = E.Cat;
    if (E.Ph == 'B') {
      if (Name == "pipeline") {
        EXPECT_TRUE(Stack.empty()) << "pipeline span not outermost";
      } else {
        EXPECT_TRUE(Enclosing("pipeline")) << Name << " outside pipeline";
      }
      if (Cat == "stage") {
        EXPECT_TRUE(Enclosing("pipeline"));
      }
      if (Name == "wave") {
        EXPECT_TRUE(EnclosingCat("stage")) << "wave outside a stage span";
      }
      if (Name == "region") {
        EXPECT_TRUE(Enclosing("wave")) << "region outside a wave";
      }
      if (Name == "block") {
        ++Blocks;
        EXPECT_TRUE(Enclosing("region") || Enclosing("local"))
            << "block outside region/local";
      }
      Stack.push_back(&E);
    } else if (E.Ph == 'E') {
      ASSERT_FALSE(Stack.empty());
      Stack.pop_back();
    } else if (Cat == "cycle") {
      ++Picks;
      EXPECT_TRUE(Enclosing("block")) << Name << " instant outside a block";
    }
  }
  EXPECT_TRUE(Stack.empty());
  EXPECT_GT(Blocks, 0u);
  EXPECT_GT(Picks, 0u);
}

/// The span multiset (Ph, Name, Cat) is identical for --region-jobs 1 and
/// 8: parallel dispatch changes interleaving and thread assignment, never
/// what work happens.
TEST(TraceFormat, RegionJobsSpanMultisetInvariant) {
  auto Multiset = [](const std::vector<obs::TraceEvent> &Events) {
    std::map<std::string, size_t> M;
    for (const obs::TraceEvent &E : Events)
      ++M[std::string(1, E.Ph) + "|" + E.Name + "|" + E.Cat];
    return M;
  };
  auto Seq = Multiset(tracedRun("obs_loop_spec", 1));
  auto Par = Multiset(tracedRun("obs_loop_spec", 8));
  EXPECT_EQ(Seq, Par);
}

TEST(TraceFormat, DisabledTracerCollectsNothing) {
  obs::Tracer &Tr = obs::Tracer::instance();
  Tr.clear();
  ASSERT_FALSE(Tr.enabled());
  runFixture("obs_diamond", obsOptions());
  EXPECT_TRUE(Tr.snapshot().empty());
  EXPECT_EQ(Tr.droppedEvents(), 0u);
}

//===----------------------------------------------------------------------===
// 4. Zero perturbation
//===----------------------------------------------------------------------===

TEST(TracePerturbation, TracingDoesNotChangeSchedules) {
  for (const char *Name : Fixtures) {
    RunResult Off = runFixture(Name, obsOptions());
    obs::Tracer &Tr = obs::Tracer::instance();
    Tr.enable();
    RunResult On = runFixture(Name, obsOptions());
    Tr.disable();
    Tr.clear();
    EXPECT_EQ(Off.IR, On.IR) << Name;
    EXPECT_TRUE(hashKey128(Off.IR) == hashKey128(On.IR)) << Name;
    EXPECT_EQ(renderedLog(Off.Stats.Decisions),
              renderedLog(On.Stats.Decisions))
        << Name;
    EXPECT_TRUE(Off.Stats.Counters == On.Stats.Counters) << Name;
  }
}

TEST(TracePerturbation, CollectionFlagsDoNotChangeSchedules) {
  for (const char *Name : Fixtures) {
    PipelineOptions Bare;
    Bare.CollectCounters = false;
    Bare.CollectDecisions = false;
    RunResult Off = runFixture(Name, Bare);
    RunResult On = runFixture(Name, obsOptions());
    EXPECT_EQ(Off.IR, On.IR) << Name;
    EXPECT_TRUE(hashKey128(Off.IR) == hashKey128(On.IR)) << Name;
    // The bare run must not have paid for collection.
    EXPECT_EQ(Off.Stats.Decisions.size(), 0u);
    EXPECT_EQ(Off.Stats.Counters.ruleWinTotal(), 0u);
  }
}

} // namespace

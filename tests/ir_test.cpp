//===- tests/ir_test.cpp - IR core unit tests ------------------------------===//
//
// Tests for registers, opcode tables, instruction construction, functions,
// layout/CFG maintenance, and the verifier.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace gis;

TEST(RegTest, ClassesAndIndices) {
  Reg R = Reg::gpr(31);
  EXPECT_TRUE(R.isValid());
  EXPECT_TRUE(R.isGPR());
  EXPECT_EQ(R.index(), 31u);
  EXPECT_EQ(R.str(), "r31");

  Reg F = Reg::fpr(2);
  EXPECT_TRUE(F.isFPR());
  EXPECT_EQ(F.str(), "f2");

  Reg CR = Reg::cr(7);
  EXPECT_TRUE(CR.isCR());
  EXPECT_EQ(CR.str(), "cr7");

  Reg Invalid;
  EXPECT_FALSE(Invalid.isValid());
  EXPECT_NE(R, F);
  EXPECT_EQ(R, Reg::gpr(31));
}

TEST(OpcodeTest, NamesRoundTrip) {
  for (unsigned I = 0; I != NumOpcodes; ++I) {
    Opcode Op = static_cast<Opcode>(I);
    auto Parsed = parseOpcode(opcodeName(Op));
    ASSERT_TRUE(Parsed.has_value()) << "opcode " << I;
    EXPECT_EQ(*Parsed, Op);
  }
  EXPECT_FALSE(parseOpcode("BOGUS").has_value());
}

TEST(OpcodeTest, PropertyFlags) {
  EXPECT_TRUE(opcodeInfo(Opcode::L).IsLoad);
  EXPECT_TRUE(opcodeInfo(Opcode::LU).IsLoad);
  EXPECT_TRUE(opcodeInfo(Opcode::ST).IsStore);
  EXPECT_TRUE(opcodeInfo(Opcode::ST).NeverSpeculate);
  EXPECT_TRUE(opcodeInfo(Opcode::CALL).NeverCrossBlock);
  EXPECT_TRUE(opcodeInfo(Opcode::CALL).TouchesMemory);
  EXPECT_TRUE(opcodeInfo(Opcode::BT).IsBranch);
  EXPECT_TRUE(opcodeInfo(Opcode::BT).IsTerminator);
  EXPECT_TRUE(opcodeInfo(Opcode::RET).IsTerminator);
  EXPECT_FALSE(opcodeInfo(Opcode::RET).IsBranch);
  EXPECT_FALSE(opcodeInfo(Opcode::A).NeverSpeculate);
  // Trapping divides must never be speculated.
  EXPECT_TRUE(opcodeInfo(Opcode::DIV).NeverSpeculate);
  EXPECT_TRUE(opcodeInfo(Opcode::REM).NeverSpeculate);
}

TEST(OpcodeTest, CondBits) {
  EXPECT_EQ(condBitName(CondBit::LT), "lt");
  EXPECT_EQ(condBitName(CondBit::GT), "gt");
  EXPECT_EQ(condBitName(CondBit::EQ), "eq");
  EXPECT_EQ(parseCondBit("gt"), CondBit::GT);
  EXPECT_FALSE(parseCondBit("ge").has_value());
}

namespace {

/// Builds a diamond: entry -> (then | else) -> join.
Function &buildDiamond(Module &M) {
  Function &F = M.createFunction("diamond");
  IRBuilder B(F);
  BlockId Entry = F.createBlock("entry");
  BlockId Then = F.createBlock("then");
  BlockId Else = F.createBlock("else");
  BlockId Join = F.createBlock("join");

  Reg X = F.newReg(RegClass::GPR);
  Reg Y = F.newReg(RegClass::GPR);
  Reg CRz = F.newReg(RegClass::CR);

  B.setInsertBlock(Entry);
  B.li(X, 1);
  B.cmpi(CRz, X, 0);
  B.bt(CRz, CondBit::GT, Else);

  B.setInsertBlock(Then);
  B.li(Y, 2);
  B.br(Join);

  B.setInsertBlock(Else);
  B.li(Y, 3);

  B.setInsertBlock(Join);
  B.ret(Y);

  F.recomputeCFG();
  F.renumberOriginalOrder();
  return F;
}

} // namespace

TEST(FunctionTest, DiamondCFG) {
  Module M;
  Function &F = buildDiamond(M);

  EXPECT_EQ(F.numBlocks(), 4u);
  EXPECT_EQ(F.entry(), F.layout().front());

  const BasicBlock &Entry = F.block(0);
  ASSERT_EQ(Entry.succs().size(), 2u);
  // Taken target first.
  EXPECT_EQ(F.block(Entry.succs()[0]).label(), "else");
  EXPECT_EQ(F.block(Entry.succs()[1]).label(), "then");

  const BasicBlock &Join = F.block(3);
  EXPECT_EQ(Join.preds().size(), 2u);
  EXPECT_TRUE(Join.succs().empty());

  EXPECT_TRUE(verifyFunction(F).empty());
}

TEST(FunctionTest, OriginalOrderFollowsLayout) {
  Module M;
  Function &F = buildDiamond(M);
  uint32_t Prev = 0;
  bool First = true;
  for (BlockId B : F.layout()) {
    for (InstrId I : F.block(B).instrs()) {
      if (!First) {
        EXPECT_GT(F.instr(I).originalOrder(), Prev);
      }
      Prev = F.instr(I).originalOrder();
      First = false;
    }
  }
}

TEST(FunctionTest, LayoutSuccessor) {
  Module M;
  Function &F = buildDiamond(M);
  EXPECT_EQ(F.layoutSuccessor(0), 1u);
  EXPECT_EQ(F.layoutSuccessor(2), 3u);
  EXPECT_EQ(F.layoutSuccessor(3), InvalidId);
}

TEST(FunctionTest, CreateBlockAfterInsertsInLayout) {
  Module M;
  Function &F = buildDiamond(M);
  BlockId NewB = F.createBlockAfter(1, "after_then");
  ASSERT_EQ(F.layout().size(), 5u);
  EXPECT_EQ(F.layout()[2], NewB);
}

TEST(FunctionTest, CloneInstr) {
  Module M;
  Function &F = buildDiamond(M);
  InstrId First = F.block(0).instrs()[0];
  InstrId Clone = F.cloneInstr(First);
  EXPECT_NE(First, Clone);
  EXPECT_EQ(F.instr(Clone).opcode(), F.instr(First).opcode());
  EXPECT_EQ(F.instr(Clone).imm(), F.instr(First).imm());
}

TEST(VerifierTest, CatchesTerminatorInMiddle) {
  Module M;
  Function &F = M.createFunction("bad");
  IRBuilder B(F);
  BlockId Entry = F.createBlock("entry");
  B.setInsertBlock(Entry);
  B.ret();
  B.nop(); // instruction after the terminator
  F.recomputeCFG();
  EXPECT_FALSE(verifyFunction(F).empty());
}

TEST(VerifierTest, CatchesFallOffEnd) {
  Module M;
  Function &F = M.createFunction("bad");
  IRBuilder B(F);
  BlockId Entry = F.createBlock("entry");
  B.setInsertBlock(Entry);
  B.nop();
  F.recomputeCFG();
  EXPECT_FALSE(verifyFunction(F).empty());
}

TEST(VerifierTest, CatchesWrongRegisterClass) {
  Module M;
  Function &F = M.createFunction("bad");
  BlockId Entry = F.createBlock("entry");
  Instruction I(Opcode::C);
  I.defs() = {Reg::gpr(0)}; // compare must define a CR
  I.uses() = {Reg::gpr(1), Reg::gpr(2)};
  F.appendInstr(Entry, I);
  Instruction R(Opcode::RET);
  F.appendInstr(Entry, R);
  F.recomputeCFG();
  EXPECT_FALSE(verifyFunction(F).empty());
}

TEST(VerifierTest, AcceptsWellFormedDiamond) {
  Module M;
  Function &F = buildDiamond(M);
  EXPECT_TRUE(verifyFunction(F).empty());
}

TEST(ModuleTest, GlobalAllocationIsDisjoint) {
  Module M;
  // Copy the first descriptor: the reference returned by allocateGlobal is
  // invalidated by the next allocation (the globals vector may grow).
  const GlobalArray A = M.allocateGlobal("a", 100);
  const GlobalArray &B = M.allocateGlobal("b", 50);
  EXPECT_LT(A.Address + A.SizeWords * 4, B.Address);
  EXPECT_EQ(M.globals().size(), 2u);
}

//===- tests/misc_test.cpp - Remaining edge-case coverage ------------------===//
//
// Interpreter arithmetic corners, machine-description mutators, verifier
// corners, unrolling loops with internal exits, and printer coverage of
// the floating-point opcode family.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "machine/MachineDescription.h"
#include "sched/Unroll.h"

#include <gtest/gtest.h>

using namespace gis;

//===----------------------------------------------------------------------===
// Interpreter corners
//===----------------------------------------------------------------------===

TEST(InterpCornerTest, LUWithDestEqualBaseIsInvalid) {
  // LU rX, rX is an invalid instruction form (like POWER's lwzu with
  // RT == RA): the verifier rejects it.
  ParseResult R = parseModule(R"(
func f {
B0:
  LI r1 = 100
  LU r1, r1 = mem[r1 + 8]
  RET r1
}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(verifyModule(*R.M).empty());
}

TEST(InterpCornerTest, ShiftAmountsMaskTo63) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 1
  SL r2 = r1, 64
  SL r3 = r1, 3
  A r4 = r2, r3
  RET r4
}
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->functions()[0]);
  ASSERT_FALSE(R.Trapped);
  // 64 & 63 == 0: no shift; plus 1 << 3.
  EXPECT_EQ(R.ReturnValue, 1 + 8);
}

TEST(InterpCornerTest, FMAExecutes) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 400
  LI r2 = 3
  ST mem[r1 + 0] = r2
  LI r3 = 5
  ST mem[r1 + 4] = r3
  LI r4 = 7
  ST mem[r1 + 8] = r4
  LF f1 = mem[r1 + 0]
  LF f2 = mem[r1 + 4]
  LF f3 = mem[r1 + 8]
  FMA f4 = f1, f2, f3
  STF mem[r1 + 12] = f4
  L r5 = mem[r1 + 12]
  RET r5
}
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->functions()[0]);
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.ReturnValue, 3 * 5 + 7);
}

TEST(InterpCornerTest, MemoryPersistsAcrossRuns) {
  auto M = parseModuleOrDie(R"(
func bump {
B0:
  LI r1 = 600
  L r2 = mem[r1 + 0]
  AI r2 = r2, 1
  ST mem[r1 + 0] = r2
  RET r2
}
)");
  Interpreter I(*M);
  EXPECT_EQ(I.run(*M->functions()[0]).ReturnValue, 1);
  EXPECT_EQ(I.run(*M->functions()[0]).ReturnValue, 2);
  EXPECT_EQ(I.run(*M->functions()[0]).ReturnValue, 3);
}

//===----------------------------------------------------------------------===
// Machine description mutators
//===----------------------------------------------------------------------===

TEST(MachineCornerTest, CustomDelayRules) {
  MachineDescription MD = MachineDescription::rs6k();
  MD.clearDelayRules();
  EXPECT_EQ(MD.flowDelay(Opcode::L, Opcode::A), 0u);
  EXPECT_EQ(MD.flowDelay(Opcode::C, Opcode::BT), 0u);
  // First matching rule wins.
  MD.addDelayRule(DelayRule{OpClass::Load, OpClass::Branch,
                            /*AnyConsumer=*/false, 7});
  MD.addDelayRule(DelayRule{OpClass::Load, OpClass::Other,
                            /*AnyConsumer=*/true, 2});
  EXPECT_EQ(MD.flowDelay(Opcode::L, Opcode::BT), 7u);
  EXPECT_EQ(MD.flowDelay(Opcode::L, Opcode::A), 2u);
}

TEST(MachineCornerTest, ExecTimeAndUnitCountMutators) {
  MachineDescription MD = MachineDescription::rs6k();
  MD.setExecTime(Opcode::A, 4);
  EXPECT_EQ(MD.execTime(Opcode::A), 4u);
  MD.setUnitCount(0, 3);
  EXPECT_EQ(MD.unitType(0).Count, 3u);
  EXPECT_EQ(MD.totalUnits(), 5u);
  MD.setName("custom");
  EXPECT_EQ(MD.name(), "custom");
}

//===----------------------------------------------------------------------===
// Verifier corners
//===----------------------------------------------------------------------===

TEST(VerifierCornerTest, STUWithWrongBase) {
  Module M;
  Function &F = M.createFunction("bad");
  BlockId B = F.createBlock("B0");
  Instruction Stu(Opcode::STU);
  Stu.defs() = {Reg::gpr(5)}; // must equal the base (last use)
  Stu.uses() = {Reg::gpr(1), Reg::gpr(2)};
  F.appendInstr(B, Stu);
  F.appendInstr(B, Instruction(Opcode::RET));
  F.recomputeCFG();
  EXPECT_FALSE(verifyFunction(F).empty());
}

TEST(VerifierCornerTest, FCWithIntegerOperands) {
  Module M;
  Function &F = M.createFunction("bad");
  BlockId B = F.createBlock("B0");
  Instruction FC(Opcode::FC);
  FC.defs() = {Reg::cr(0)};
  FC.uses() = {Reg::gpr(1), Reg::gpr(2)}; // must be FPRs
  F.appendInstr(B, FC);
  F.appendInstr(B, Instruction(Opcode::RET));
  F.recomputeCFG();
  EXPECT_FALSE(verifyFunction(F).empty());
}

TEST(VerifierCornerTest, BranchWithoutTarget) {
  Module M;
  Function &F = M.createFunction("bad");
  BlockId B = F.createBlock("B0");
  Instruction Br(Opcode::B); // no target set
  F.appendInstr(B, Br);
  F.recomputeCFG();
  // recomputeCFG would assert on an invalid target, so verify first.
  EXPECT_FALSE(verifyFunction(F).empty());
}

//===----------------------------------------------------------------------===
// Unrolling a loop with an internal exit
//===----------------------------------------------------------------------===

TEST(UnrollCornerTest, LoopWithInternalBreak) {
  const char *Text = R"(
func f(r9, r8) {
PRE:
  LI r1 = 0
  LI r3 = 0
LOOP:
  AI r1 = r1, 1
  A r3 = r3, r1
  C cr1 = r3, r8
  BT OUT, cr1, gt
BODY2:
  C cr0 = r1, r9
  BT LOOP, cr0, lt
OUT:
  RET r3
}
)";
  auto Base = parseModuleOrDie(Text);
  auto M = parseModuleOrDie(Text);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  ASSERT_EQ(LI.numLoops(), 1u);
  ASSERT_TRUE(canUnrollOnce(F, LI, 0));
  ASSERT_TRUE(unrollLoopOnce(F, LI, 0));
  EXPECT_TRUE(verifyFunction(F).empty());

  // Behaviour across both exit kinds (break-out and condition-out).
  for (int64_t Limit : {5, 1000}) {
    Interpreter I0(*Base), I1(*M);
    for (Interpreter *I : {&I0, &I1}) {
      I->setReg(Base->functions()[0]->params()[0], 10); // r9: count bound
      I->setReg(Base->functions()[0]->params()[1], Limit); // r8: sum bound
    }
    ExecResult R0 = I0.run(*Base->functions()[0]);
    ExecResult R1 = I1.run(*M->functions()[0]);
    ASSERT_FALSE(R0.Trapped);
    ASSERT_FALSE(R1.Trapped);
    EXPECT_EQ(R0.ReturnValue, R1.ReturnValue) << "limit=" << Limit;
  }
}

//===----------------------------------------------------------------------===
// Printer coverage of the floating-point family
//===----------------------------------------------------------------------===

TEST(PrinterCornerTest, FloatOpcodesRoundTrip) {
  const char *Text = R"(
func f {
B0:
  LF f1 = mem[r1 + 0]
  LF f2 = mem[r1 + 8]
  FA f3 = f1, f2
  FS f4 = f3, f1
  FM f5 = f4, f2
  FD f6 = f5, f1
  FMA f7 = f1, f2, f6
  FC cr0 = f7, f1
  STF mem[r1 + 16] = f7
  BT B1, cr0, gt
B1:
  RET
}
)";
  auto M1 = parseModuleOrDie(Text);
  std::string P1 = moduleToString(*M1);
  auto M2 = parseModuleOrDie(P1);
  EXPECT_EQ(moduleToString(*M2), P1);
  // Spot checks.
  const Function &F = *M1->functions()[0];
  EXPECT_EQ(instructionToString(F, 2), "FA f3 = f1, f2");
  EXPECT_EQ(instructionToString(F, 6), "FMA f7 = f1, f2, f6");
  EXPECT_EQ(instructionToString(F, 7), "FC cr0 = f7, f1");
  EXPECT_EQ(instructionToString(F, 8), "STF mem[r1 + 16] = f7");
}

//===- tests/renaming_test.cpp - Register renaming tests -------------------===//
//
// The local-value rename helper (used by the speculative live-on-exit
// rescue, Figure 6's cr6 -> cr5) and the Section 4.2 pre-renaming pass.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "sched/PreRenaming.h"
#include "sched/Renaming.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

BlockId blockByLabel(const Function &F, const std::string &Label) {
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    if (F.block(B).label() == Label)
      return B;
  ADD_FAILURE() << "no block " << Label;
  return InvalidId;
}

} // namespace

TEST(RenamingTest, RenamesLocalValue) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  C cr6 = r1, r2
  BF B1, cr6, gt
B1:
  RET
}
)");
  Function &F = *M->functions()[0];
  Liveness LV = Liveness::compute(F);
  BlockId B0 = blockByLabel(F, "B0");
  InstrId Cmp = F.block(B0).instrs()[0];
  ASSERT_TRUE(renameLocalDef(F, B0, Cmp, Reg::cr(6), LV));
  // Definition and the local use rewritten consistently.
  Reg Fresh = F.instr(Cmp).defs()[0];
  EXPECT_NE(Fresh, Reg::cr(6));
  EXPECT_EQ(F.instr(F.block(B0).instrs()[1]).uses()[0], Fresh);
  EXPECT_TRUE(verifyFunction(F).empty());
}

TEST(RenamingTest, RefusesWhenValueEscapes) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 5
  CI cr0 = r9, 0
  BT B1, cr0, lt
B1:
  CALL print(r1)
  RET
}
)");
  Function &F = *M->functions()[0];
  Liveness LV = Liveness::compute(F);
  BlockId B0 = blockByLabel(F, "B0");
  InstrId Def = F.block(B0).instrs()[0];
  // r1 is live out of B0 (printed in B1): renaming must refuse.
  EXPECT_FALSE(renameLocalDef(F, B0, Def, Reg::gpr(1), LV));
  EXPECT_EQ(F.instr(Def).defs()[0], Reg::gpr(1));
}

TEST(RenamingTest, RenamesUpToRedefinition) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 5
  AI r2 = r1, 1
  LI r1 = 7
  AI r3 = r1, 1
  A r4 = r2, r3
  RET r4
}
)");
  Function &F = *M->functions()[0];
  Liveness LV = Liveness::compute(F);
  BlockId B0 = 0;
  InstrId FirstDef = F.block(B0).instrs()[0];
  ASSERT_TRUE(renameLocalDef(F, B0, FirstDef, Reg::gpr(1), LV));
  // The first use rewritten; the post-redefinition use untouched.
  Reg Fresh = F.instr(FirstDef).defs()[0];
  EXPECT_EQ(F.instr(F.block(B0).instrs()[1]).uses()[0], Fresh);
  EXPECT_EQ(F.instr(F.block(B0).instrs()[3]).uses()[0], Reg::gpr(1));

  // Semantics preserved: (5+1) + (7+1) = 14.
  Interpreter I(*M);
  ExecResult R = I.run(F);
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.ReturnValue, 14);
}

TEST(PreRenamingTest, BreaksOutputDependence) {
  // Two unrelated temporaries sharing r1: pre-renaming gives the first a
  // fresh register, removing the output/anti dependences between the
  // pairs.
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 5
  AI r2 = r1, 1
  LI r1 = 7
  AI r3 = r1, 1
  A r4 = r2, r3
  RET r4
}
)");
  Function &F = *M->functions()[0];
  PreRenamingStats Stats = preRenameLocals(F);
  EXPECT_EQ(Stats.RenamedDefs, 1u);
  EXPECT_TRUE(verifyFunction(F).empty());
  // The two LI destinations now differ.
  Reg First = F.instr(F.block(0).instrs()[0]).defs()[0];
  Reg Second = F.instr(F.block(0).instrs()[2]).defs()[0];
  EXPECT_NE(First, Second);
  Interpreter I(*M);
  EXPECT_EQ(I.run(F).ReturnValue, 14);
}

TEST(PreRenamingTest, LeavesLiveValuesAlone) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 5
  CI cr0 = r9, 0
  BT B1, cr0, lt
B1:
  CALL print(r1)
  RET
}
)");
  Function &F = *M->functions()[0];
  std::string Before = functionToString(F);
  PreRenamingStats Stats = preRenameLocals(F);
  // r1 is the last write in B0 and live out: nothing to rename.
  EXPECT_EQ(Stats.RenamedDefs, 0u);
  EXPECT_EQ(functionToString(F), Before);
}

TEST(PreRenamingTest, SkipsBaseUpdatingInstructions) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LU r0, r31 = mem[r31 + 8]
  LI r31 = 0
  RET r0
}
)");
  Function &F = *M->functions()[0];
  preRenameLocals(F);
  // The LU defines two registers; it is skipped entirely.
  const Instruction &LU = F.instr(F.block(0).instrs()[0]);
  EXPECT_EQ(LU.defs()[1], Reg::gpr(31));
  EXPECT_TRUE(verifyFunction(F).empty());
}

TEST(PreRenamingTest, MinmaxFigure2IsAFixpoint) {
  // The paper's Figure 2 code has no reused block-local temporaries: the
  // pass must leave it untouched (so the figure reproductions are
  // unaffected by the preprocessing).
  auto M = parseModuleOrDie(R"(
func minmax {
BL1:
  L r12 = mem[r31 + 4]
  LU r0, r31 = mem[r31 + 8]
  C cr7 = r12, r0
  BF BL3, cr7, gt
BL2:
  LR r30 = r12
BL3:
  AI r29 = r29, 2
  C cr4 = r29, r27
  BT BL1, cr4, lt
BL4:
  RET
}
)");
  Function &F = *M->functions()[0];
  std::string Before = functionToString(F);
  PreRenamingStats Stats = preRenameLocals(F);
  EXPECT_EQ(Stats.RenamedDefs, 0u);
  EXPECT_EQ(functionToString(F), Before);
}

//===- tests/regpressure_test.cpp - Register pressure tests -----------------===//

#include "analysis/RegPressure.h"
#include "ir/Parser.h"
#include "machine/MachineDescription.h"
#include "sched/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace gis;

TEST(RegPressureTest, StraightLineChain) {
  // Each value dies feeding the next: only one GPR is live at any program
  // point (an allocator could run this chain in a single register).
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 1
  AI r2 = r1, 1
  AI r3 = r2, 1
  RET r3
}
)");
  RegPressure P = computeRegPressure(*M->functions()[0]);
  EXPECT_EQ(P.maxLive(RegClass::GPR), 1u);
  EXPECT_EQ(P.maxLive(RegClass::CR), 0u);
}

TEST(RegPressureTest, WideExpressionNeedsMoreRegisters) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 1
  LI r2 = 2
  LI r3 = 3
  LI r4 = 4
  A r5 = r1, r2
  A r6 = r3, r4
  A r7 = r5, r6
  RET r7
}
)");
  RegPressure P = computeRegPressure(*M->functions()[0]);
  // All four LI results live together before the adds consume them.
  EXPECT_EQ(P.maxLive(RegClass::GPR), 4u);
  EXPECT_EQ(P.PeakBlock, 0u);
}

TEST(RegPressureTest, CountsClassesSeparately) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  C cr0 = r1, r2
  C cr1 = r1, r2
  BT B1, cr0, lt
B1:
  BT B2, cr1, lt
B2:
  RET
}
)");
  RegPressure P = computeRegPressure(*M->functions()[0]);
  EXPECT_EQ(P.maxLive(RegClass::CR), 2u);
  EXPECT_EQ(P.maxLive(RegClass::GPR), 2u);
}

TEST(RegPressureTest, LoopCarriedValuesStayLive) {
  auto M = parseModuleOrDie(R"(
func f {
PRE:
  LI r1 = 0
  LI r2 = 0
LOOP:
  A r2 = r2, r1
  AI r1 = r1, 1
  C cr0 = r1, r9
  BT LOOP, cr0, lt
POST:
  RET r2
}
)");
  RegPressure P = computeRegPressure(*M->functions()[0]);
  // r1, r2, r9 live around the loop.
  EXPECT_GE(P.maxLive(RegClass::GPR), 3u);
}

TEST(RegPressureTest, SchedulingPressureCostIsBounded) {
  // Scheduling (speculation, renaming) lengthens live ranges; the paper
  // accepts this by scheduling pre-allocation.  Sanity-bound the cost on
  // the running example: the scheduled minmax must not need more than a
  // handful of extra registers.
  auto Before = minmaxFigure2Module();
  RegPressure P0 = computeRegPressure(*Before->functions()[0]);

  auto After = minmaxFigure2Module();
  PipelineOptions Opts;
  schedulePipeline(*After->functions()[0], MachineDescription::rs6k(), Opts);
  RegPressure P1 = computeRegPressure(*After->functions()[0]);

  EXPECT_LE(P1.maxLive(RegClass::GPR), P0.maxLive(RegClass::GPR) + 4);
  EXPECT_LE(P1.maxLive(RegClass::CR), P0.maxLive(RegClass::CR) + 4);
  // And the paper's example fits the RS/6000's 32 GPRs / 8 CRs with room
  // to spare even after scheduling.
  EXPECT_LE(P1.maxLive(RegClass::GPR), 32u);
  EXPECT_LE(P1.maxLive(RegClass::CR), 8u);
}

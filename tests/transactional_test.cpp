//===- tests/transactional_test.cpp - Transactional pipeline tests ---------===//
//
// End-to-end tests of the failure model: random programs run through the
// full pipeline with the differential oracle checking every transaction;
// deterministic fault injection corrupts each stage in turn and the
// pipeline must never abort, never emit ill-formed IR, and roll the
// function back bit-identically to its checkpoint.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "analysis/Region.h"
#include "frontend/CodeGen.h"
#include "interp/DifferentialOracle.h"
#include "interp/Interpreter.h"
#include "ir/Checkpoint.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "sched/Pipeline.h"
#include "support/FaultInjection.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

struct Observed {
  bool Trapped;
  std::string TrapReason;
  std::vector<int64_t> Printed;
  int64_t ReturnValue;
  std::vector<std::pair<int64_t, int64_t>> Memory;
};

/// Runs `main` of \p M and captures everything observable.  The generous
/// step budget accommodates the occasional long-running random program.
Observed observe(const Module &M) {
  Observed O;
  Interpreter I(M);
  Function *Main = const_cast<Module &>(M).findFunction("main");
  EXPECT_NE(Main, nullptr);
  ExecResult R = I.run(*Main, 50'000'000);
  O.TrapReason = R.TrapReason;
  O.Trapped = R.Trapped;
  O.Printed = R.Printed;
  O.ReturnValue = R.ReturnValue;
  for (const auto &[Addr, Val] : I.memory())
    if (Val != 0)
      O.Memory.emplace_back(Addr, Val);
  std::sort(O.Memory.begin(), O.Memory.end());
  return O;
}

/// The pipeline configurations the fuzz tests cover: local-only, useful,
/// the paper's full speculative pipeline, and the duplication extension.
PipelineOptions configOpts(int Config) {
  PipelineOptions Opts;
  switch (Config) {
  case 0:
    Opts.Level = SchedLevel::None;
    break;
  case 1:
    Opts.Level = SchedLevel::Useful;
    Opts.EnableUnroll = false;
    Opts.EnableRotate = false;
    break;
  case 2: // the paper's full pipeline
    Opts.Level = SchedLevel::Speculative;
    break;
  case 3: // future-work extension: scheduling with duplication
    Opts.Level = SchedLevel::Speculative;
    Opts.AllowDuplication = true;
    break;
  default:
    ADD_FAILURE();
  }
  return Opts;
}

std::string diagDump(const PipelineStats &Stats) {
  std::string Out;
  for (const Diagnostic &D : Stats.Diags)
    Out += D.str() + "\n";
  return Out;
}

void expectSameBehaviour(const Module &Base, const Module &Sched,
                         const std::string &Source) {
  Observed A = observe(Base);
  if (A.Trapped && A.TrapReason == "step budget exhausted")
    return; // pathological long-runner; the in-pipeline oracle covered it
  Observed B = observe(Sched);
  ASSERT_FALSE(A.Trapped) << Source;
  ASSERT_FALSE(B.Trapped) << Source;
  EXPECT_EQ(A.Printed, B.Printed) << Source;
  EXPECT_EQ(A.ReturnValue, B.ReturnValue) << Source;
  EXPECT_EQ(A.Memory, B.Memory) << Source;
}

} // namespace

//===----------------------------------------------------------------------===
// Oracle fuzz: every transaction of every config differentially executed
//===----------------------------------------------------------------------===

class TransactionalOracleTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

// 50 seeds x 4 configs = 200 random programs.  With the oracle enabled the
// pipeline differentially executes the function after every transform; a
// single mismatch (or a verifier false positive, visible as a rollback
// without an injected fault) fails the test.
TEST_P(TransactionalOracleTest, NoMismatchesAndNoSpuriousRollbacks) {
  auto [Seed, Config] = GetParam();
  std::string Source = generateRandomMiniC(Seed);
  CompileResult Base = compileMiniC(Source);
  ASSERT_TRUE(Base.ok()) << Base.Error << "\n" << Source;
  CompileResult Sched = compileMiniC(Source);
  ASSERT_TRUE(Sched.ok());

  PipelineOptions Opts = configOpts(Config);
  Opts.EnableOracle = true;
  Opts.OracleMaxSteps = 200'000;
  PipelineStats Stats =
      scheduleModule(*Sched.M, MachineDescription::rs6k(), Opts);

  EXPECT_EQ(Stats.OracleMismatches, 0u) << diagDump(Stats) << Source;
  EXPECT_EQ(Stats.VerifierFailures, 0u) << diagDump(Stats) << Source;
  EXPECT_EQ(Stats.EngineFailures, 0u) << diagDump(Stats) << Source;
  EXPECT_EQ(Stats.RegionsRolledBack + Stats.TransformsRolledBack, 0u)
      << diagDump(Stats) << Source;
  ASSERT_TRUE(verifyModule(*Sched.M).empty()) << Source;
  expectSameBehaviour(*Base.M, *Sched.M, Source);
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, TransactionalOracleTest,
    ::testing::Combine(::testing::Range<uint64_t>(1, 51),
                       ::testing::Values(0, 1, 2, 3)));

//===----------------------------------------------------------------------===
// Fault injection: corrupt each stage in turn
//===----------------------------------------------------------------------===

class FaultMatrixTest : public ::testing::TestWithParam<const char *> {
protected:
  void TearDown() override { FaultInjector::instance().disarm(); }
};

// For each pipeline stage, scan seeds until the armed fault fires (the
// stage must occur in at least one of the programs).  Every run -- faulted
// or not -- must leave well-formed IR with unchanged behaviour, and a
// fired fault must be caught by a verifier and rolled back.
TEST_P(FaultMatrixTest, CorruptionIsCaughtAndRolledBack) {
  const char *Stage = GetParam();
  unsigned TotalFaults = 0;
  for (uint64_t Seed = 1; Seed <= 40 && TotalFaults == 0; ++Seed) {
    std::string Source = generateRandomMiniC(Seed);
    CompileResult Base = compileMiniC(Source);
    ASSERT_TRUE(Base.ok()) << Base.Error;
    CompileResult Sched = compileMiniC(Source);
    ASSERT_TRUE(Sched.ok());

    PipelineOptions Opts;
    Opts.Level = SchedLevel::Speculative;
    Opts.AllowDuplication = true; // so the "duplicate" stage exists
    FaultInjector::instance().arm(Stage);
    PipelineStats Stats =
        scheduleModule(*Sched.M, MachineDescription::rs6k(), Opts);
    FaultInjector::instance().disarm();

    ASSERT_TRUE(verifyModule(*Sched.M).empty())
        << "stage " << Stage << " seed " << Seed;
    if (Stats.FaultsInjected > 0) {
      EXPECT_EQ(Stats.FaultsInjected, 1u);
      EXPECT_GE(Stats.VerifierFailures, 1u) << diagDump(Stats);
      EXPECT_GE(Stats.RegionsRolledBack + Stats.TransformsRolledBack, 1u)
          << diagDump(Stats);
      EXPECT_FALSE(Stats.Diags.empty());
      TotalFaults += Stats.FaultsInjected;
    }
    expectSameBehaviour(*Base.M, *Sched.M, Source);
  }
  // The stage must have been reachable somewhere in the seed range,
  // otherwise this test exercises nothing.
  EXPECT_GE(TotalFaults, 1u) << "stage " << Stage << " never ran";
}

INSTANTIATE_TEST_SUITE_P(Stages, FaultMatrixTest,
                         ::testing::Values("prerename", "unroll", "region",
                                           "rotate", "duplicate", "local"));

// A fault in a region-scheduling transaction specifically bumps the
// region rollback counter.
TEST(FaultInjectionTest, RegionFaultIncrementsRegionRollback) {
  std::string Source = generateRandomMiniC(2);
  CompileResult Base = compileMiniC(Source);
  ASSERT_TRUE(Base.ok());
  CompileResult Sched = compileMiniC(Source);
  ASSERT_TRUE(Sched.ok());

  PipelineOptions Opts;
  FaultInjector::instance().arm("region");
  PipelineStats Stats =
      scheduleModule(*Sched.M, MachineDescription::rs6k(), Opts);
  FaultInjector::instance().disarm();

  ASSERT_EQ(Stats.FaultsInjected, 1u);
  EXPECT_GE(Stats.RegionsRolledBack, 1u) << diagDump(Stats);
  EXPECT_EQ(Stats.TransformsRolledBack, 0u) << diagDump(Stats);
  ASSERT_TRUE(verifyModule(*Sched.M).empty());
  expectSameBehaviour(*Base.M, *Sched.M, Source);
}

//===----------------------------------------------------------------------===
// Rollback restores the checkpoint bit-identically
//===----------------------------------------------------------------------===

TEST(RollbackTest, RestoreIsBitIdentical) {
  std::unique_ptr<Module> M = compileMiniCOrDie(generateRandomMiniC(3));
  Function &F = *M->functions()[0];
  F.recomputeCFG();
  F.renumberOriginalOrder();

  FunctionSnapshot Snap(F);
  ASSERT_TRUE(corruptFunctionForTest(F));
  EXPECT_FALSE(functionsIdentical(F, Snap.function()));
  Snap.restore(F);
  EXPECT_TRUE(functionsIdentical(F, Snap.function()));
}

// With global scheduling and pre-renaming off, "local" is the only
// transaction; corrupting it must leave the first function exactly as the
// checkpoint had it -- i.e. identical to a never-scheduled compile.
TEST(RollbackTest, PipelineRollbackLeavesFunctionUntouched) {
  std::string Source = generateRandomMiniC(5);
  std::unique_ptr<Module> Ref = compileMiniCOrDie(Source);
  std::unique_ptr<Module> M = compileMiniCOrDie(Source);

  PipelineOptions Opts;
  Opts.Level = SchedLevel::None;
  Opts.EnablePreRenaming = false;
  FaultInjector::instance().arm("local");
  PipelineStats Stats = scheduleModule(*M, MachineDescription::rs6k(), Opts);
  FaultInjector::instance().disarm();

  ASSERT_EQ(Stats.FaultsInjected, 1u);
  EXPECT_EQ(Stats.TransformsRolledBack, 1u) << diagDump(Stats);

  // The fault fired in the first function's only transaction; rollback
  // must restore the pre-pipeline state (modulo the pipeline's initial
  // CFG/order normalization, applied to the reference too).
  Function &RefF = *Ref->functions()[0];
  RefF.recomputeCFG();
  RefF.renumberOriginalOrder();
  EXPECT_TRUE(functionsIdentical(*M->functions()[0], RefF));
}

//===----------------------------------------------------------------------===
// Unit tests: fault injector and differential oracle
//===----------------------------------------------------------------------===

TEST(FaultInjectorTest, NthOccurrenceOneShot) {
  FaultInjector &FI = FaultInjector::instance();
  FI.arm("region:2");
  EXPECT_TRUE(FI.armed());
  EXPECT_EQ(FI.trigger(), 2u);
  EXPECT_FALSE(FI.shouldFire("region")); // occurrence 1
  EXPECT_FALSE(FI.shouldFire("local"));  // different stage never fires
  EXPECT_TRUE(FI.shouldFire("region"));  // occurrence 2
  EXPECT_FALSE(FI.shouldFire("region")); // one-shot
  EXPECT_EQ(FI.firedCount(), 1u);
  FI.disarm();
  EXPECT_FALSE(FI.armed());
  EXPECT_FALSE(FI.shouldFire("region"));
}

TEST(DifferentialOracleTest, MatchesIdenticalFunctions) {
  const char *Text = R"(
func f {
BL0:
  LI r1 = 41
  CALL print(r1)
  RET
}
)";
  std::unique_ptr<Module> A = parseModuleOrDie(Text);
  std::unique_ptr<Module> B = parseModuleOrDie(Text);
  OracleReport Rep = runDifferentialOracle(*A, *A->functions()[0],
                                           *B->functions()[0]);
  EXPECT_EQ(Rep.Verdict, OracleVerdict::Match) << Rep.Detail;
}

//===----------------------------------------------------------------------===
// Region-local rollback (region-parallel scheduling support)
//===----------------------------------------------------------------------===

namespace {

/// A function with two independent inner loops -- two sibling regions in
/// one wave of the region dependence forest.
const char *TwoLoopSource = R"(
  int main() {
    int a = 0; int b = 0; int i = 0; int j = 0;
    while (i < 9) { a = a + i * 2; i = i + 1; }
    while (j < 9) { b = b + j * 3; j = j + 1; }
    print(a); print(b);
    return a + b;
  }
)";

/// The real-block set of loop \p LoopIdx of \p F.
std::vector<BlockId> loopBlocks(const Function &F, int LoopIdx) {
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, LoopIdx);
  std::vector<BlockId> Blocks;
  for (const RegionNode &N : R.nodes())
    if (N.isBlock())
      Blocks.push_back(N.Block);
  return Blocks;
}

} // namespace

// A RegionSnapshot restores exactly the blocks it captured: corruption
// inside the region is undone; a sibling region's state is not touched.
TEST(RollbackTest, RegionSnapshotRestoresOnlyItsRegion) {
  std::unique_ptr<Module> M = compileMiniCOrDie(TwoLoopSource);
  Function &F = *M->functions()[0];
  F.recomputeCFG();
  F.renumberOriginalOrder();
  std::vector<BlockId> Loop0 = loopBlocks(F, 0);
  std::vector<BlockId> Loop1 = loopBlocks(F, 1);
  ASSERT_FALSE(Loop0.empty());
  ASSERT_FALSE(Loop1.empty());

  FunctionSnapshot Orig(F);
  RegionSnapshot Snap(F, Loop0);

  // Corrupt the snapshotted region; restore must be bit-identical.
  ASSERT_TRUE(corruptRegionForTest(F, Loop0));
  EXPECT_FALSE(functionsIdentical(F, Orig.function()));
  Snap.restore(F);
  EXPECT_TRUE(functionsIdentical(F, Orig.function()));

  // Corrupt a *sibling* region; restoring the loop-0 snapshot must leave
  // the sibling's damage in place (region-local, not whole-function).
  ASSERT_TRUE(corruptRegionForTest(F, Loop1));
  Snap.restore(F);
  EXPECT_FALSE(functionsIdentical(F, Orig.function()));
}

// A fault injected into one region's scheduling transaction rolls back
// only that region: exactly one region rollback, no transform rollback,
// every sibling region still scheduled and the function verifier green --
// at region-jobs 1 and in parallel.
class RegionFaultTest : public ::testing::TestWithParam<unsigned> {
protected:
  void TearDown() override { FaultInjector::instance().disarm(); }
};

TEST_P(RegionFaultTest, FaultRollsBackOnlyFaultedRegion) {
  unsigned RegionJobs = GetParam();
  PipelineOptions Opts;
  Opts.RegionJobs = RegionJobs;

  // Fault-free reference: how many regions a clean run schedules.
  std::unique_ptr<Module> Ref = compileMiniCOrDie(TwoLoopSource);
  PipelineStats RefStats =
      scheduleModule(*Ref, MachineDescription::rs6k(), Opts);
  ASSERT_EQ(RefStats.RegionsRolledBack, 0u);
  ASSERT_GE(RefStats.Global.RegionsScheduled, 2u);

  std::unique_ptr<Module> Base = compileMiniCOrDie(TwoLoopSource);
  std::unique_ptr<Module> Sched = compileMiniCOrDie(TwoLoopSource);
  FaultInjector::instance().arm("region");
  PipelineStats Stats =
      scheduleModule(*Sched, MachineDescription::rs6k(), Opts);
  FaultInjector::instance().disarm();

  ASSERT_EQ(Stats.FaultsInjected, 1u);
  EXPECT_EQ(Stats.RegionsRolledBack, 1u) << diagDump(Stats);
  EXPECT_EQ(Stats.TransformsRolledBack, 0u) << diagDump(Stats);
  EXPECT_GE(Stats.VerifierFailures, 1u) << diagDump(Stats);
  // Siblings committed: only the faulted region's work was dropped.
  EXPECT_EQ(Stats.Global.RegionsScheduled,
            RefStats.Global.RegionsScheduled - 1);
  ASSERT_TRUE(verifyModule(*Sched).empty());
  expectSameBehaviour(*Base, *Sched, TwoLoopSource);
}

INSTANTIATE_TEST_SUITE_P(RegionJobs, RegionFaultTest,
                         ::testing::Values(1u, 4u));

TEST(DifferentialOracleTest, FlagsChangedObservableValue) {
  std::unique_ptr<Module> A = parseModuleOrDie(R"(
func f {
BL0:
  LI r1 = 41
  CALL print(r1)
  RET
}
)");
  std::unique_ptr<Module> B = parseModuleOrDie(R"(
func f {
BL0:
  LI r1 = 42
  CALL print(r1)
  RET
}
)");
  OracleReport Rep = runDifferentialOracle(*A, *A->functions()[0],
                                           *B->functions()[0]);
  EXPECT_EQ(Rep.Verdict, OracleVerdict::Mismatch);
  EXPECT_FALSE(Rep.Detail.empty());
}

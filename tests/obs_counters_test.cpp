//===- tests/obs_counters_test.cpp - Counter-invariant property tests ------===//
//
// Property tests over the random-program corpus tying the obs counter
// registry (src/obs/Counters.h) to the scheduler's own statistics.  The
// two are bumped at *different* code sites -- GlobalSchedStats classifies
// motions in the OnSchedule callback, the obs counters at the engine's
// pick point -- so agreement is a real cross-check of the Section 5.2/5.3
// bookkeeping, not a tautology:
//
//   motion.useful        == GlobalSchedStats::UsefulMotions
//   motion.speculative   == GlobalSchedStats::SpeculativeMotions
//   motion.duplication   == PipelineStats::DuplicatedInstrs
//   sum(rule.*)          == sched.picks_contested
//                        == decisions with >= 2 candidates
//   spec.veto_liveout    == GlobalSchedStats::VetoedSpeculations
//   spec.renames         == GlobalSchedStats::Renames
//   tx.rollbacks         == RegionsRolledBack + TransformsRolledBack
//
// Part of the `gis_obs_tests` executable (ctest label "obs").
//
//===----------------------------------------------------------------------===//

#include "frontend/CodeGen.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "obs/Counters.h"
#include "obs/Decision.h"
#include "sched/Pipeline.h"
#include "sched/Report.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>

using namespace gis;

namespace {

std::string renderedLog(const std::vector<obs::Decision> &Log) {
  std::ostringstream SS;
  obs::renderDecisions(Log, SS);
  return SS.str();
}

/// Checks every registry invariant of one pipeline run.
void checkInvariants(const PipelineStats &S, const std::string &Tag) {
  const obs::CounterSet &C = S.Counters;

  // Motion classification: the engine's pick-point accounting agrees with
  // the global scheduler's OnSchedule classification.
  EXPECT_EQ(C.get(obs::MotionUseful), S.Global.UsefulMotions) << Tag;
  EXPECT_EQ(C.get(obs::MotionSpeculative), S.Global.SpeculativeMotions)
      << Tag;
  EXPECT_EQ(C.get(obs::MotionDuplication), S.DuplicatedInstrs) << Tag;

  // Rule wins: exactly one rule counter per contested pick.
  EXPECT_EQ(C.ruleWinTotal(), C.get(obs::PicksContested)) << Tag;

  // The decision log mirrors the pick accounting: one record per pick,
  // contested iff the record lists a beaten candidate / carries a rule.
  uint64_t Contested = 0, Uncontested = 0;
  for (const obs::Decision &D : S.Decisions) {
    ASSERT_FALSE(D.Candidates.empty()) << Tag;
    EXPECT_EQ(D.Candidates.front(), D.Instr) << Tag;
    if (D.Candidates.size() >= 2) {
      ++Contested;
      EXPECT_NE(D.Rule, obs::RuleId::None) << Tag;
    } else {
      ++Uncontested;
      EXPECT_EQ(D.Rule, obs::RuleId::None) << Tag;
    }
  }
  EXPECT_EQ(Contested, C.get(obs::PicksContested)) << Tag;
  EXPECT_EQ(Uncontested, C.get(obs::PicksUncontested)) << Tag;

  // Section 5.3 guard and the transactional machinery.
  EXPECT_EQ(C.get(obs::SpecVetoLiveOut), S.Global.VetoedSpeculations) << Tag;
  EXPECT_EQ(C.get(obs::SpecRenames), S.Global.Renames) << Tag;
  EXPECT_EQ(C.get(obs::Rollbacks),
            uint64_t(S.RegionsRolledBack) + S.TransformsRolledBack)
      << Tag;

  // The engine-path counters never move in a raw pipeline run.
  EXPECT_EQ(C.get(obs::CacheHits), 0u) << Tag;
  EXPECT_EQ(C.get(obs::CacheMisses), 0u) << Tag;
}

TEST(ObsCounters, InvariantsOverRandomCorpus) {
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    std::unique_ptr<Module> M =
        compileMiniCOrDie(generateRandomMiniC(Seed));
    PipelineOptions Opts;
    Opts.CollectDecisions = true;
    // Exercise the duplication counter on a slice of the corpus.
    Opts.AllowDuplication = (Seed % 5 == 0);
    PipelineStats Stats = scheduleModule(*M, MachineDescription::rs6k(), Opts);
    ASSERT_TRUE(verifyModule(*M).empty()) << "seed " << Seed;
    checkInvariants(Stats, "seed " + std::to_string(Seed));

    // Every ~10th seed: the registry and the decision log are exact under
    // region parallelism (same merge discipline as PipelineStats).
    if (Seed % 10 == 0) {
      std::unique_ptr<Module> M2 =
          compileMiniCOrDie(generateRandomMiniC(Seed));
      PipelineOptions Par = Opts;
      Par.RegionJobs = 4;
      PipelineStats PS = scheduleModule(*M2, MachineDescription::rs6k(), Par);
      EXPECT_TRUE(Stats.Counters == PS.Counters) << "seed " << Seed;
      EXPECT_EQ(renderedLog(Stats.Decisions), renderedLog(PS.Decisions))
          << "seed " << Seed;
      EXPECT_EQ(moduleToString(*M), moduleToString(*M2)) << "seed " << Seed;
    }
  }
}

TEST(ObsCounters, ScheduleReportCarriesCounters) {
  std::unique_ptr<Module> M = compileMiniCOrDie(generateRandomMiniC(42));
  PipelineOptions Opts;
  Opts.CollectDecisions = true;
  ScheduleReport R = scheduleWithReport(*M, MachineDescription::rs6k(), Opts);
  checkInvariants(R.Stats, "report");
  // The motion total the report exposes equals the classified counters.
  EXPECT_EQ(R.Stats.Counters.get(obs::MotionUseful) +
                R.Stats.Counters.get(obs::MotionSpeculative),
            uint64_t(R.Stats.Global.UsefulMotions) +
                R.Stats.Global.SpeculativeMotions);
}

// Cold-path instrumentation (DESIGN.md section 14): the coldpath.* group
// must reflect the configured mode -- the delta counters only move when
// the incremental path is on, the structural counters (arena bytes, DDG
// nodes) describe the same graphs either way, and everything outside the
// group is identical across modes because the emitted schedules are.
TEST(ObsCounters, ColdpathCountersTrackIncrementalMode) {
  for (uint64_t Seed : {3u, 11u, 27u}) {
    std::string Source = generateRandomMiniC(Seed);
    std::unique_ptr<Module> Inc = compileMiniCOrDie(Source);
    std::unique_ptr<Module> Full = compileMiniCOrDie(Source);

    PipelineOptions IOpts;
    IOpts.Level = SchedLevel::Speculative;
    PipelineOptions FOpts = IOpts;
    FOpts.Incremental = false;

    PipelineStats IS = scheduleModule(*Inc, MachineDescription::rs6k(), IOpts);
    PipelineStats FS = scheduleModule(*Full, MachineDescription::rs6k(), FOpts);
    std::string Tag = "seed " + std::to_string(Seed);

    // Both modes build the same dependence graphs.
    EXPECT_GT(IS.Counters.get(obs::ColdDdgNodes), 0u) << Tag;
    EXPECT_GT(IS.Counters.get(obs::ColdArenaBytes), 0u) << Tag;
    EXPECT_EQ(IS.Counters.get(obs::ColdDdgNodes),
              FS.Counters.get(obs::ColdDdgNodes))
        << Tag;
    EXPECT_EQ(IS.Counters.get(obs::ColdArenaBytes),
              FS.Counters.get(obs::ColdArenaBytes))
        << Tag;

    // The delta machinery never engages with --no-incremental.
    EXPECT_EQ(FS.Counters.get(obs::ColdLivenessDelta), 0u) << Tag;
    EXPECT_EQ(FS.Counters.get(obs::ColdHeurBlockRecomputes), 0u) << Tag;
    EXPECT_EQ(FS.Counters.get(obs::ColdFastForwards), 0u) << Tag;
    // Neither do the caches, delta checkpoints or scoped verification.
    EXPECT_EQ(FS.Counters.get(obs::ColdDisambigCacheHits), 0u) << Tag;
    EXPECT_EQ(FS.Counters.get(obs::ColdDisambigCacheMisses), 0u) << Tag;
    EXPECT_EQ(FS.Counters.get(obs::ColdCkptBytes), 0u) << Tag;
    EXPECT_EQ(FS.Counters.get(obs::ColdVerifyBlocksScoped), 0u) << Tag;
    EXPECT_EQ(FS.Counters.get(obs::ColdVerifyBlocksTotal), 0u) << Tag;
    // ... and the incremental mode actually exercises them.
    EXPECT_GT(IS.Counters.get(obs::ColdDisambigCacheHits), 0u) << Tag;
    EXPECT_GT(IS.Counters.get(obs::ColdDisambigCacheMisses), 0u) << Tag;

    // Outside the coldpath group the runs are indistinguishable.
    obs::CounterSet A = IS.Counters, B = FS.Counters;
    for (obs::CounterId Id :
         {obs::ColdArenaBytes, obs::ColdDdgNodes, obs::ColdLivenessDelta,
          obs::ColdLivenessFull, obs::ColdHeurBlockRecomputes,
          obs::ColdFastForwards, obs::ColdDisambigCacheHits,
          obs::ColdDisambigCacheMisses, obs::ColdCkptBytes,
          obs::ColdVerifyBlocksScoped, obs::ColdVerifyBlocksTotal}) {
      A.V[static_cast<unsigned>(Id)] = 0;
      B.V[static_cast<unsigned>(Id)] = 0;
    }
    EXPECT_TRUE(A == B) << Tag;
    EXPECT_EQ(moduleToString(*Inc), moduleToString(*Full)) << Tag;
  }
}

TEST(ObsCounters, CollectionOffLeavesRegistryEmpty) {
  std::unique_ptr<Module> M = compileMiniCOrDie(generateRandomMiniC(7));
  PipelineOptions Opts;
  Opts.CollectCounters = false;
  Opts.CollectDecisions = false;
  PipelineStats Stats = scheduleModule(*M, MachineDescription::rs6k(), Opts);
  EXPECT_TRUE(Stats.Counters == obs::CounterSet{});
  EXPECT_TRUE(Stats.Decisions.empty());
}

TEST(ObsCounters, CounterSetArithmetic) {
  obs::CounterSet A, B;
  A.bump(obs::MotionUseful, 3);
  A.bump(obs::RuleSourceOrder);
  B.bump(obs::MotionUseful);
  B.bump(obs::RuleDelaySpec, 2);
  A += B;
  EXPECT_EQ(A.get(obs::MotionUseful), 4u);
  EXPECT_EQ(A.get(obs::RuleSourceOrder), 1u);
  EXPECT_EQ(A.get(obs::RuleDelaySpec), 2u);
  EXPECT_EQ(A.ruleWinTotal(), 3u);
  EXPECT_FALSE(A == B);
}

TEST(ObsCounters, KeysAreStableAndUnique) {
  std::set<std::string_view> Keys;
  for (unsigned K = 0; K != obs::NumCounters; ++K) {
    std::string_view Key = obs::counterKey(static_cast<obs::CounterId>(K));
    EXPECT_FALSE(Key.empty());
    EXPECT_TRUE(Keys.insert(Key).second) << "duplicate key " << Key;
    EXPECT_FALSE(
        obs::counterLabel(static_cast<obs::CounterId>(K)).empty());
  }
  EXPECT_EQ(obs::counterKey(obs::MotionUseful), "motion.useful");
  EXPECT_EQ(obs::counterKey(obs::RuleSourceOrder), "rule.source_order");
  EXPECT_EQ(obs::counterKey(obs::CacheHits), "cache.hits");
}

} // namespace

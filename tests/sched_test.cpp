//===- tests/sched_test.cpp - Global/local scheduler tests -----------------===//
//
// Reproduces the paper's scheduling examples: Figure 2 -> Figure 5 (useful
// scheduling) and Figure 2 -> Figure 6 (useful + 1-branch speculative with
// register renaming), checks the Section 5.3 live-on-exit guard, and
// verifies semantics preservation via the interpreter.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "analysis/Region.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "machine/Timing.h"
#include "sched/GlobalScheduler.h"
#include "sched/LocalScheduler.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

const char *MinmaxFull = R"(
func minmax {
BL0:
  LI r31 = 1000
  L r28 = mem[r31 + 0]
  LR r30 = r28
  LI r29 = 1
BL1:
  L r12 = mem[r31 + 4]
  LU r0, r31 = mem[r31 + 8]
  C cr7 = r12, r0
  BF BL6, cr7, gt
BL2:
  C cr6 = r12, r30
  BF BL4, cr6, gt
BL3:
  LR r30 = r12
BL4:
  C cr7 = r0, r28
  BF BL10, cr7, lt
BL5:
  LR r28 = r0
  B BL10
BL6:
  C cr6 = r0, r30
  BF BL8, cr6, gt
BL7:
  LR r30 = r0
BL8:
  C cr7 = r12, r28
  BF BL10, cr7, lt
BL9:
  LR r28 = r12
BL10:
  AI r29 = r29, 2
  C cr4 = r29, r27
  BT BL1, cr4, lt
BL11:
  CALL print(r28)
  CALL print(r30)
  RET
}
)";

BlockId blockByLabel(const Function &F, const std::string &Label) {
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    if (F.block(B).label() == Label)
      return B;
  ADD_FAILURE() << "no block " << Label;
  return InvalidId;
}

/// Applies global scheduling to minmax's loop and returns (module, stats).
std::pair<std::unique_ptr<Module>, GlobalSchedStats>
scheduleMinmax(SchedLevel Level, bool Renaming = true) {
  auto M = parseModuleOrDie(MinmaxFull);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, 0);
  GlobalSchedOptions Opts;
  Opts.Level = Level;
  Opts.EnableRenaming = Renaming;
  GlobalScheduler GS(MachineDescription::rs6k(), Opts);
  GlobalSchedStats Stats = GS.scheduleRegion(F, R);
  return {std::move(M), Stats};
}

/// Opcode sequence of one block, e.g. "L LU AI C C BF".
std::string blockOpcodes(const Function &F, const std::string &Label) {
  std::string Out;
  for (InstrId I : F.block(blockByLabel(F, Label)).instrs()) {
    if (!Out.empty())
      Out += ' ';
    Out += std::string(opcodeName(F.instr(I).opcode()));
  }
  return Out;
}

/// Runs minmax on fixed data and returns (printed values, trace length).
ExecResult runMinmax(const Module &M, std::vector<TraceEntry> *TraceOut = nullptr,
                     int UpdatesPerIteration = 2) {
  const Function &F = *M.functions()[0];
  Interpreter I(M);
  I.enableTrace(TraceOut != nullptr);
  const int N = 130;
  for (int K = 0; K != N; ++K) {
    int64_t V;
    switch (UpdatesPerIteration) {
    case 0:
      V = 5;
      break;
    case 1:
      V = K;
      break;
    default:
      V = (K % 2 == 1) ? 1000 + K : -1000 - K;
      break;
    }
    I.storeWord(1000 + 4 * K, V);
  }
  I.setReg(Reg::gpr(27), N - 2);
  ExecResult R = I.run(F);
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  if (TraceOut)
    *TraceOut = I.trace();
  return R;
}

double loopPeriod(const Module &M, int Updates) {
  const Function &F = *M.functions()[0];
  std::vector<TraceEntry> Trace;
  runMinmax(M, &Trace, Updates);
  TimingSimulator Sim(MachineDescription::rs6k());
  Sim.recordIssueTimes(true);
  TimingResult T = Sim.simulate(Trace);
  std::vector<size_t> Markers;
  for (size_t K = 0; K != Trace.size(); ++K)
    if (F.instr(Trace[K].Instr).opcode() == Opcode::BT)
      Markers.push_back(K);
  return steadyStatePeriod(T.IssueTimes, Markers);
}

} // namespace

//===----------------------------------------------------------------------===
// Figure 5: useful-only global scheduling
//===----------------------------------------------------------------------===

TEST(GlobalSchedTest, UsefulReproducesFigure5) {
  auto [M, Stats] = scheduleMinmax(SchedLevel::Useful);
  Function &F = *M->functions()[0];
  EXPECT_TRUE(verifyFunction(F).empty());

  // The paper's Figure 5 block contents, opcode by opcode:
  // BL1 gains I18 (AI) and I19 (C) from BL10.
  EXPECT_EQ(blockOpcodes(F, "BL1"), "L LU AI C C BF");
  // BL2 gains I8 (C) from BL4; BL4 keeps only its branch.
  EXPECT_EQ(blockOpcodes(F, "BL2"), "C C BF");
  EXPECT_EQ(blockOpcodes(F, "BL4"), "BF");
  // BL6 gains I15 (C) from BL8.
  EXPECT_EQ(blockOpcodes(F, "BL6"), "C C BF");
  EXPECT_EQ(blockOpcodes(F, "BL8"), "BF");
  // BL10 keeps only the loop-closing branch.
  EXPECT_EQ(blockOpcodes(F, "BL10"), "BT");
  // Untouched blocks.
  EXPECT_EQ(blockOpcodes(F, "BL3"), "LR");
  EXPECT_EQ(blockOpcodes(F, "BL5"), "LR B");

  // Exactly four useful motions (I18, I19, I8, I15), no speculation.
  EXPECT_EQ(Stats.UsefulMotions, 4u);
  EXPECT_EQ(Stats.SpeculativeMotions, 0u);
  EXPECT_EQ(Stats.Renames, 0u);

  // Figure 5's exact BL1 order: I1, I2, I18, I3, I19, I4.
  const std::vector<InstrId> &BL1 = F.block(blockByLabel(F, "BL1")).instrs();
  ASSERT_EQ(BL1.size(), 6u);
  EXPECT_EQ(F.instr(BL1[2]).opcode(), Opcode::AI); // I18 fills the LU slot
  EXPECT_EQ(F.instr(BL1[3]).opcode(), Opcode::C);  // I3
  EXPECT_EQ(F.instr(BL1[4]).opcode(), Opcode::C);  // I19
}

TEST(GlobalSchedTest, UsefulPreservesSemantics) {
  auto Base = parseModuleOrDie(MinmaxFull);
  auto [Sched, Stats] = scheduleMinmax(SchedLevel::Useful);
  for (int Updates : {0, 1, 2}) {
    ExecResult R0 = runMinmax(*Base, nullptr, Updates);
    ExecResult R1 = runMinmax(*Sched, nullptr, Updates);
    EXPECT_EQ(R0.Printed, R1.Printed) << "updates=" << Updates;
  }
}

TEST(GlobalSchedTest, UsefulReaches12To13Cycles) {
  auto [M, Stats] = scheduleMinmax(SchedLevel::Useful);
  EXPECT_NEAR(loopPeriod(*M, 0), 12.0, 1.0);
  EXPECT_NEAR(loopPeriod(*M, 2), 13.0, 1.5);
}

//===----------------------------------------------------------------------===
// Figure 6: useful + 1-branch speculative scheduling
//===----------------------------------------------------------------------===

TEST(GlobalSchedTest, SpeculativeReproducesFigure6) {
  auto [M, Stats] = scheduleMinmax(SchedLevel::Speculative);
  Function &F = *M->functions()[0];
  EXPECT_TRUE(verifyFunction(F).empty());

  // Figure 6: BL1 additionally receives the speculative compares I5 and
  // I12 (I12's condition register renamed, cr6 -> cr5 in the paper).
  EXPECT_EQ(blockOpcodes(F, "BL1"), "L LU AI C C C C BF");
  EXPECT_EQ(blockOpcodes(F, "BL2"), "C BF");
  EXPECT_EQ(blockOpcodes(F, "BL6"), "C BF");
  EXPECT_EQ(blockOpcodes(F, "BL4"), "BF");
  EXPECT_EQ(blockOpcodes(F, "BL8"), "BF");
  EXPECT_EQ(blockOpcodes(F, "BL10"), "BT");

  EXPECT_EQ(Stats.UsefulMotions, 4u);
  EXPECT_EQ(Stats.SpeculativeMotions, 2u);
  EXPECT_EQ(Stats.Renames, 1u);

  // The two speculative compares must write DIFFERENT condition registers
  // (that is what the rename is for), and each arm's first branch must
  // read the matching one.
  const std::vector<InstrId> &BL1 = F.block(blockByLabel(F, "BL1")).instrs();
  ASSERT_EQ(BL1.size(), 8u);
  Reg CrI5 = F.instr(BL1[5]).defs()[0];
  Reg CrI12 = F.instr(BL1[6]).defs()[0];
  EXPECT_NE(CrI5, CrI12);
  // BL2's branch (I6) reads I5's register; BL6's branch (I13) reads I12's.
  const Instruction &I6 =
      F.instr(F.block(blockByLabel(F, "BL2")).instrs().back());
  EXPECT_EQ(I6.uses()[0], CrI5);
  const Instruction &I13 =
      F.instr(F.block(blockByLabel(F, "BL6")).instrs().back());
  EXPECT_EQ(I13.uses()[0], CrI12);
}

TEST(GlobalSchedTest, SpeculativePreservesSemantics) {
  auto Base = parseModuleOrDie(MinmaxFull);
  auto [Sched, Stats] = scheduleMinmax(SchedLevel::Speculative);
  for (int Updates : {0, 1, 2}) {
    ExecResult R0 = runMinmax(*Base, nullptr, Updates);
    ExecResult R1 = runMinmax(*Sched, nullptr, Updates);
    EXPECT_EQ(R0.Printed, R1.Printed) << "updates=" << Updates;
  }
}

TEST(GlobalSchedTest, SpeculativeReaches11To12Cycles) {
  auto [M, Stats] = scheduleMinmax(SchedLevel::Speculative);
  EXPECT_NEAR(loopPeriod(*M, 0), 11.0, 1.0);
  EXPECT_NEAR(loopPeriod(*M, 2), 12.0, 1.5);
}

TEST(GlobalSchedTest, StaircaseAcrossLevels) {
  auto Base = parseModuleOrDie(MinmaxFull);
  auto [Useful, S1] = scheduleMinmax(SchedLevel::Useful);
  auto [Spec, S2] = scheduleMinmax(SchedLevel::Speculative);
  for (int Updates : {0, 2}) {
    double P0 = loopPeriod(*Base, Updates);
    double P1 = loopPeriod(*Useful, Updates);
    double P2 = loopPeriod(*Spec, Updates);
    EXPECT_GT(P0, P1);
    EXPECT_GE(P1, P2);
  }
}

TEST(GlobalSchedTest, NoneLevelIsIdentity) {
  auto Base = parseModuleOrDie(MinmaxFull);
  std::string Before = moduleToString(*Base);
  Function &F = *Base->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, 0);
  GlobalSchedOptions Opts;
  Opts.Level = SchedLevel::None;
  GlobalScheduler GS(MachineDescription::rs6k(), Opts);
  GlobalSchedStats Stats = GS.scheduleRegion(F, R);
  EXPECT_EQ(Stats.BlocksScheduled, 0u);
  EXPECT_EQ(moduleToString(*Base), Before);
}

//===----------------------------------------------------------------------===
// Live-on-exit guard (Section 5.3)
//===----------------------------------------------------------------------===

TEST(GlobalSchedTest, RenamingDisabledVetoesSecondCompare) {
  auto [M, Stats] = scheduleMinmax(SchedLevel::Speculative,
                                   /*Renaming=*/false);
  Function &F = *M->functions()[0];
  EXPECT_TRUE(verifyFunction(F).empty());
  // Only I5 can move speculatively; I12 is vetoed by the live-on-exit
  // check once I5's cr6 is live out of BL1.
  EXPECT_EQ(Stats.SpeculativeMotions, 1u);
  EXPECT_GE(Stats.VetoedSpeculations, 1u);
  EXPECT_EQ(Stats.Renames, 0u);
  EXPECT_EQ(blockOpcodes(F, "BL1"), "L LU AI C C C BF");

  // Still correct.
  auto Base = parseModuleOrDie(MinmaxFull);
  for (int Updates : {0, 1, 2}) {
    ExecResult R0 = runMinmax(*Base, nullptr, Updates);
    ExecResult R1 = runMinmax(*M, nullptr, Updates);
    EXPECT_EQ(R0.Printed, R1.Printed);
  }
}

TEST(GlobalSchedTest, Section53ExampleOnlyOneAssignmentMoves) {
  // The x=5 / x=3 example: both assignments are speculative candidates
  // for B1; at most one may move (the second would clobber a value that
  // became live), and renaming cannot rescue it because x is used in B4.
  const char *Text = R"(
func f {
B1:
  C cr0 = r8, r9
  BF B3, cr0, gt
B2:
  LI r1 = 5
  B B4
B3:
  LI r1 = 3
B4:
  CALL print(r1)
  RET
}
)";
  auto M = parseModuleOrDie(Text);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  GlobalSchedOptions Opts;
  Opts.Level = SchedLevel::Speculative;
  GlobalScheduler GS(MachineDescription::rs6k(), Opts);
  GlobalSchedStats Stats = GS.scheduleRegion(F, R);
  EXPECT_TRUE(verifyFunction(F).empty());
  EXPECT_LE(Stats.SpeculativeMotions, 1u);
  EXPECT_GE(Stats.VetoedSpeculations, 1u);

  // Semantics on both branch outcomes.
  auto Base = parseModuleOrDie(Text);
  for (int64_t R8 : {1, 9}) {
    Interpreter I0(*Base), I1(*M);
    I0.setReg(Reg::gpr(8), R8);
    I0.setReg(Reg::gpr(9), 5);
    I1.setReg(Reg::gpr(8), R8);
    I1.setReg(Reg::gpr(9), 5);
    ExecResult E0 = I0.run(*Base->functions()[0]);
    ExecResult E1 = I1.run(*M->functions()[0]);
    EXPECT_EQ(E0.Printed, E1.Printed) << "r8=" << R8;
  }
}

TEST(GlobalSchedTest, StoresAreNeverSpeculated) {
  const char *Text = R"(
func f {
B1:
  C cr0 = r8, r9
  BF B3, cr0, gt
B2:
  ST mem[r2 + 0] = r8
  B B4
B3:
  NOP
B4:
  RET
}
)";
  auto M = parseModuleOrDie(Text);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  GlobalSchedOptions Opts;
  Opts.Level = SchedLevel::Speculative;
  GlobalScheduler GS(MachineDescription::rs6k(), Opts);
  GS.scheduleRegion(F, R);
  // The store stays in B2 (B3's NOP may legitimately move, the ST never).
  EXPECT_EQ(blockOpcodes(F, "B2"), "ST B");
  EXPECT_EQ(blockOpcodes(F, "B1").find("ST"), std::string::npos);
}

TEST(GlobalSchedTest, CallsNeverMove) {
  const char *Text = R"(
func f {
B1:
  LI r1 = 1
B2:
  CALL print(r1)
B3:
  RET
}
)";
  auto M = parseModuleOrDie(Text);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  GlobalSchedOptions Opts;
  Opts.Level = SchedLevel::Speculative;
  GlobalScheduler GS(MachineDescription::rs6k(), Opts);
  GS.scheduleRegion(F, R);
  // B1, B2 and B3 are all equivalent, but the CALL must stay in B2.
  EXPECT_EQ(blockOpcodes(F, "B2"), "CALL");
}

//===----------------------------------------------------------------------===
// Local (basic block) scheduler
//===----------------------------------------------------------------------===

TEST(LocalSchedTest, HoistsLoadAboveIndependentOp) {
  // Load feeds the final add; the independent LI can fill its delay slot.
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 100
  L r2 = mem[r1 + 0]
  AI r3 = r2, 1
  LI r4 = 7
  A r5 = r3, r4
  RET r5
}
)");
  Function &F = *M->functions()[0];
  LocalSchedStats Stats = scheduleLocal(F, MachineDescription::rs6k());
  EXPECT_TRUE(verifyFunction(F).empty());
  EXPECT_EQ(Stats.BlocksReordered, 1u);
  // "LI r4 = 7" moves into the load's delay slot, before "AI r3 = r2, 1".
  const std::vector<InstrId> &B0 = F.block(0).instrs();
  ASSERT_EQ(B0.size(), 6u);
  EXPECT_EQ(F.instr(B0[2]).opcode(), Opcode::LI);
  EXPECT_EQ(F.instr(B0[2]).imm(), 7);
  EXPECT_EQ(F.instr(B0[3]).opcode(), Opcode::AI);

  // Semantics unchanged.
  Interpreter I(*M);
  I.storeWord(100, 42);
  ExecResult R = I.run(F);
  EXPECT_EQ(R.ReturnValue, 42 + 1 + 7);
}

TEST(LocalSchedTest, RespectsMemoryDependences) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 100
  LI r2 = 5
  ST mem[r1 + 0] = r2
  L r3 = mem[r1 + 0]
  RET r3
}
)");
  Function &F = *M->functions()[0];
  scheduleLocal(F, MachineDescription::rs6k());
  Interpreter I(*M);
  ExecResult R = I.run(F);
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.ReturnValue, 5);
  // The load stays after the store.
  const std::vector<InstrId> &B0 = F.block(0).instrs();
  size_t StorePos = 0, LoadPos = 0;
  for (size_t K = 0; K != B0.size(); ++K) {
    if (F.instr(B0[K]).opcode() == Opcode::ST)
      StorePos = K;
    if (F.instr(B0[K]).opcode() == Opcode::L)
      LoadPos = K;
  }
  EXPECT_LT(StorePos, LoadPos);
}

TEST(LocalSchedTest, SchedulesAllBlocksIncludingLoops) {
  auto M = parseModuleOrDie(MinmaxFull);
  Function &F = *M->functions()[0];
  LocalSchedStats Stats = scheduleLocal(F, MachineDescription::rs6k());
  EXPECT_EQ(Stats.BlocksScheduled, F.numBlocks());
  EXPECT_TRUE(verifyFunction(F).empty());
  // Semantics preserved.
  auto Base = parseModuleOrDie(MinmaxFull);
  ExecResult R0 = runMinmax(*Base);
  ExecResult R1 = runMinmax(*M);
  EXPECT_EQ(R0.Printed, R1.Printed);
}

//===- tests/report_test.cpp - Scheduling report tests ---------------------===//

#include "sched/Report.h"
#include "workloads/Workloads.h"
#include "frontend/CodeGen.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace gis;

TEST(ReportTest, SnapshotCountsAreAccurate) {
  auto M = compileMiniCOrDie(R"(
int main(int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i = i + 1) s = s + i;
  return s;
}
)");
  std::vector<FunctionSnapshot> S =
      snapshotModule(*M, MachineDescription::rs6k());
  ASSERT_EQ(S.size(), 1u);
  EXPECT_EQ(S[0].Name, "main");
  EXPECT_EQ(S[0].Loops, 1u);
  EXPECT_TRUE(S[0].Reducible);
  unsigned Instrs = 0;
  const Function &F = *M->functions()[0];
  for (BlockId B : F.layout())
    Instrs += static_cast<unsigned>(F.block(B).size());
  EXPECT_EQ(S[0].Instructions, Instrs);
  EXPECT_GT(S[0].StaticCycleEstimate, 0u);
}

TEST(ReportTest, ScheduleWithReportShowsImprovement) {
  auto M = minmaxFigure2Module();
  PipelineOptions Opts;
  Opts.EnableUnroll = false; // keep instruction counts comparable
  Opts.EnableRotate = false;
  ScheduleReport R =
      scheduleWithReport(*M, MachineDescription::rs6k(), Opts);
  ASSERT_EQ(R.Before.size(), 1u);
  ASSERT_EQ(R.After.size(), 1u);
  // No duplication/unrolling: the instruction count is preserved exactly.
  EXPECT_EQ(R.Before[0].Instructions, R.After[0].Instructions);
  // The static estimate must drop (the 20->12 staircase in static form).
  EXPECT_LT(R.After[0].StaticCycleEstimate, R.Before[0].StaticCycleEstimate);
  EXPECT_GT(R.Stats.Global.UsefulMotions, 0u);
}

TEST(ReportTest, PrintedTableContainsEveryFunction) {
  auto M = compileMiniCOrDie(R"(
int helper(int x) { return x * 2; }
int main() { return helper(21); }
)");
  PipelineOptions Opts;
  ScheduleReport R =
      scheduleWithReport(*M, MachineDescription::rs6k(), Opts);
  std::ostringstream OS;
  printReport(R, OS);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("helper"), std::string::npos);
  EXPECT_NE(Text.find("main"), std::string::npos);
  EXPECT_NE(Text.find("motions:"), std::string::npos);
}

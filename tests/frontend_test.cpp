//===- tests/frontend_test.cpp - Mini-C frontend tests ---------------------===//
//
// Lexer, parser and code generator, culminating in the paper's Figure 1
// minmax program compiled from C source and executed.
//
//===----------------------------------------------------------------------===//

#include "frontend/CodeGen.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "sched/Pipeline.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

/// Compiles and runs `main` with the given arguments.
ExecResult compileAndRun(const char *Source, std::vector<int64_t> Args = {},
                         std::function<void(Interpreter &)> Setup = nullptr) {
  auto M = compileMiniCOrDie(Source);
  Function *Main = M->findFunction("main");
  EXPECT_NE(Main, nullptr);
  Interpreter I(*M);
  EXPECT_EQ(Args.size(), Main->params().size());
  for (size_t K = 0; K != Args.size(); ++K)
    I.setReg(Main->params()[K], Args[K]);
  if (Setup)
    Setup(I);
  ExecResult R = I.run(*Main);
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  return R;
}

} // namespace

//===----------------------------------------------------------------------===
// Lexer
//===----------------------------------------------------------------------===

TEST(LexerTest, TokensAndLines) {
  LexResult R = lexMiniC("int x = 42;\nwhile (x >= 0) { x = x - 1; }");
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_GE(R.Tokens.size(), 10u);
  EXPECT_EQ(R.Tokens[0].Kind, TokKind::KwInt);
  EXPECT_EQ(R.Tokens[1].Kind, TokKind::Identifier);
  EXPECT_EQ(R.Tokens[1].Text, "x");
  EXPECT_EQ(R.Tokens[2].Kind, TokKind::Assign);
  EXPECT_EQ(R.Tokens[3].Kind, TokKind::Number);
  EXPECT_EQ(R.Tokens[3].Value, 42);
  EXPECT_EQ(R.Tokens[5].Kind, TokKind::KwWhile);
  EXPECT_EQ(R.Tokens[5].Line, 2);
  // >= lexes as one token.
  bool SawGe = false;
  for (const Token &T : R.Tokens)
    SawGe |= T.Kind == TokKind::Ge;
  EXPECT_TRUE(SawGe);
}

TEST(LexerTest, Comments) {
  LexResult R = lexMiniC("int a; // line comment\n/* block\ncomment */ int b;");
  ASSERT_TRUE(R.ok());
  unsigned Ints = 0;
  for (const Token &T : R.Tokens)
    Ints += T.Kind == TokKind::KwInt;
  EXPECT_EQ(Ints, 2u);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(lexMiniC("int a @ b;").ok());
  EXPECT_FALSE(lexMiniC("a & b").ok());
  EXPECT_FALSE(lexMiniC("/* unterminated").ok());
}

//===----------------------------------------------------------------------===
// Parser
//===----------------------------------------------------------------------===

TEST(MiniCParserTest, FunctionAndGlobals) {
  MiniCParseResult R = parseMiniC(R"(
int a[100];
int addmul(int x, int y) {
  return x + y * 2;
}
)");
  ASSERT_TRUE(R.ok()) << R.Error << " at line " << R.Line;
  ASSERT_EQ(R.Prog->GlobalArrays.size(), 1u);
  EXPECT_EQ(R.Prog->GlobalArrays[0].first, "a");
  EXPECT_EQ(R.Prog->GlobalArrays[0].second, 100);
  ASSERT_EQ(R.Prog->Functions.size(), 1u);
  const FuncDecl &F = R.Prog->Functions[0];
  EXPECT_EQ(F.Name, "addmul");
  ASSERT_EQ(F.Params.size(), 2u);
  EXPECT_EQ(F.Params[1], "y");
  // Body: one return whose value is x + (y * 2) (precedence).
  ASSERT_EQ(F.Body->Body.size(), 1u);
  const Stmt &Ret = *F.Body->Body[0];
  EXPECT_EQ(Ret.Kind, StmtKind::Return);
  EXPECT_EQ(Ret.Value->BOp, BinOp::Add);
  EXPECT_EQ(Ret.Value->Rhs->BOp, BinOp::Mul);
}

TEST(MiniCParserTest, StatementForms) {
  MiniCParseResult R = parseMiniC(R"(
int f(int n) {
  int i;
  int acc = 0;
  int buf[8];
  for (i = 0; i < n; i = i + 1) {
    if (i % 2 == 0) { acc = acc + i; } else acc = acc - 1;
    buf[i % 8] = acc;
    if (acc > 100) break;
    while (acc < 0) { acc = acc + 3; continue; }
  }
  print(acc);
  return acc;
}
)");
  ASSERT_TRUE(R.ok()) << R.Error << " at line " << R.Line;
}

TEST(MiniCParserTest, Diagnostics) {
  MiniCParseResult R = parseMiniC("int f( { }");
  EXPECT_FALSE(R.ok());
  EXPECT_GT(R.Line, 0);

  EXPECT_FALSE(parseMiniC("int f() { return 1 }").ok());  // missing ';'
  EXPECT_FALSE(parseMiniC("int f() { x = ; }").ok());     // missing expr
  EXPECT_FALSE(parseMiniC("f() {}").ok());                // missing 'int'
}

//===----------------------------------------------------------------------===
// Code generation + execution
//===----------------------------------------------------------------------===

TEST(CodeGenTest, ArithmeticAndPrecedence) {
  ExecResult R = compileAndRun(R"(
int main() {
  return 2 + 3 * 4 - 10 / 2 - 7 % 3;
}
)");
  EXPECT_EQ(R.ReturnValue, 2 + 12 - 5 - 1);
}

TEST(CodeGenTest, UnaryOperators) {
  ExecResult R = compileAndRun(R"(
int main() {
  int a = -5;
  int b = !0;
  int c = !7;
  return a + b * 10 + c;
}
)");
  EXPECT_EQ(R.ReturnValue, -5 + 10 + 0);
}

TEST(CodeGenTest, ComparisonsAsValues) {
  ExecResult R = compileAndRun(R"(
int main() {
  int t = 3 < 5;
  int f = 3 > 5;
  int e = 4 == 4;
  int n = 4 != 4;
  int le = 4 <= 4;
  int ge = 3 >= 4;
  return t * 100000 + f * 10000 + e * 1000 + n * 100 + le * 10 + ge;
}
)");
  EXPECT_EQ(R.ReturnValue, 100000 + 0 + 1000 + 0 + 10 + 0);
}

TEST(CodeGenTest, ShortCircuitEvaluation) {
  // The right operand of && must not execute when the left is false:
  // here it would trap with division by zero.
  ExecResult R = compileAndRun(R"(
int main(int x) {
  if (x != 0 && 10 / x > 2) {
    return 1;
  }
  return 0;
}
)",
                               {0});
  EXPECT_EQ(R.ReturnValue, 0);

  ExecResult R2 = compileAndRun(R"(
int main(int x) {
  if (x == 0 || 10 / x > 2) {
    return 1;
  }
  return 0;
}
)",
                                {0});
  EXPECT_EQ(R2.ReturnValue, 1);
}

TEST(CodeGenTest, WhileAndFor) {
  ExecResult R = compileAndRun(R"(
int main(int n) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    acc = acc + i;
    i = i + 1;
  }
  for (i = 0; i < n; i = i + 1) acc = acc + 1;
  return acc;
}
)",
                               {10});
  EXPECT_EQ(R.ReturnValue, 45 + 10);
}

TEST(CodeGenTest, BreakAndContinue) {
  ExecResult R = compileAndRun(R"(
int main() {
  int acc = 0;
  int i;
  for (i = 0; i < 100; i = i + 1) {
    if (i % 2 == 0) continue;
    if (i > 10) break;
    acc = acc + i;   /* 1 + 3 + 5 + 7 + 9 */
  }
  return acc;
}
)");
  EXPECT_EQ(R.ReturnValue, 25);
}

TEST(CodeGenTest, ArraysLocalAndGlobal) {
  ExecResult R = compileAndRun(R"(
int g[16];
int main() {
  int loc[8];
  int i;
  for (i = 0; i < 8; i = i + 1) {
    loc[i] = i * i;
    g[i] = loc[i] + 1;
  }
  return g[7] + loc[3];
}
)");
  EXPECT_EQ(R.ReturnValue, 50 + 9);
}

TEST(CodeGenTest, FunctionCalls) {
  ExecResult R = compileAndRun(R"(
int square(int x) { return x * x; }
int twice(int x) { return x + x; }
int main(int n) {
  return square(twice(n)) + twice(square(n));
}
)",
                               {3});
  EXPECT_EQ(R.ReturnValue, 36 + 18);
}

TEST(CodeGenTest, RecursionWorks) {
  ExecResult R = compileAndRun(R"(
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
)");
  EXPECT_EQ(R.ReturnValue, 144);
}

TEST(CodeGenTest, PrintBuiltin) {
  ExecResult R = compileAndRun(R"(
int main() {
  int i;
  for (i = 0; i < 3; i = i + 1) print(i * 10);
  return 0;
}
)");
  ASSERT_EQ(R.Printed.size(), 3u);
  EXPECT_EQ(R.Printed[0], 0);
  EXPECT_EQ(R.Printed[1], 10);
  EXPECT_EQ(R.Printed[2], 20);
}

TEST(CodeGenTest, SemanticErrors) {
  EXPECT_FALSE(compileMiniC("int main() { return y; }").ok());
  EXPECT_FALSE(compileMiniC("int main() { int x; int x; return 0; }").ok());
  EXPECT_FALSE(compileMiniC("int main() { break; }").ok());
  EXPECT_FALSE(compileMiniC("int a[4]; int main() { return a; }").ok());
  EXPECT_FALSE(compileMiniC("int main() { int x; return x[0]; }").ok());
}

TEST(CodeGenTest, GeneratedIRIsWellFormed) {
  auto M = compileMiniCOrDie(R"(
int f(int a, int b) {
  int c = a;
  while (a > 0 && b > 0) {
    if (a > b) a = a - b; else b = b - a;
  }
  return a + b + c;
}
)");
  EXPECT_TRUE(verifyModule(*M).empty());
}

//===----------------------------------------------------------------------===
// Figure 1: the paper's minmax program, from C source
//===----------------------------------------------------------------------===

namespace {

// Figure 1 of the paper, adapted to mini-C (declarations split, the
// array passed via a global, print instead of printf).
const char *MinmaxSource = R"(
int a[64];
int minmax(int n) {
  int i;
  int u;
  int v;
  int min = a[0];
  int max = min;
  i = 1;
  while (i < n) {
    u = a[i];
    v = a[i + 1];
    if (u > v) {
      if (u > max) max = u;
      if (v < min) min = v;
    }
    else {
      if (v > max) max = v;
      if (u < min) min = u;
    }
    i = i + 2;
  }
  print(min);
  print(max);
  return 0;
}
)";

} // namespace

TEST(CodeGenTest, MinmaxFigure1FromSource) {
  auto M = compileMiniCOrDie(MinmaxSource);
  Function *F = M->findFunction("minmax");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(verifyModule(*M).empty());

  int64_t Base = M->globals()[0].Address;
  Interpreter I(*M);
  int64_t A[] = {5, 3, 9, -2, 7, 7, 0, 100, -50, 6};
  for (int K = 0; K != 10; ++K)
    I.storeWord(Base + 4 * K, A[K]);
  I.setReg(F->params()[0], 9);
  ExecResult R = I.run(*F);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  ASSERT_EQ(R.Printed.size(), 2u);
  EXPECT_EQ(R.Printed[0], -50);
  EXPECT_EQ(R.Printed[1], 100);
}

TEST(CodeGenTest, MinmaxSchedulesAndStaysCorrect) {
  auto M = compileMiniCOrDie(MinmaxSource);
  Function *F = M->findFunction("minmax");
  PipelineOptions Opts;
  PipelineStats Stats = schedulePipeline(*F, MachineDescription::rs6k(), Opts);
  EXPECT_TRUE(verifyModule(*M).empty());
  EXPECT_GT(Stats.Global.UsefulMotions + Stats.Global.SpeculativeMotions, 0u);

  int64_t Base = M->globals()[0].Address;
  Interpreter I(*M);
  int64_t A[] = {5, 3, 9, -2, 7, 7, 0, 100, -50, 6};
  for (int K = 0; K != 10; ++K)
    I.storeWord(Base + 4 * K, A[K]);
  I.setReg(F->params()[0], 9);
  ExecResult R = I.run(*F);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  ASSERT_EQ(R.Printed.size(), 2u);
  EXPECT_EQ(R.Printed[0], -50);
  EXPECT_EQ(R.Printed[1], 100);
}

//===- tests/analysis_test.cpp - CFG analysis unit tests -------------------===//
//
// Graph utilities, dominators, postdominators, loop detection and liveness.
// The minmax loop from the paper (Figures 2-4) provides ground truth for
// the dominance/equivalence structure.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/Graph.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

// The whole minmax function: preheader BL0, the paper's loop BL1-BL10,
// exit BL11.
const char *MinmaxFull = R"(
func minmax {
BL0:
  LI r31 = 1000
  L r28 = mem[r31 + 0]
  LR r30 = r28
  LI r29 = 1
BL1:
  L r12 = mem[r31 + 4]
  LU r0, r31 = mem[r31 + 8]
  C cr7 = r12, r0
  BF BL6, cr7, gt
BL2:
  C cr6 = r12, r30
  BF BL4, cr6, gt
BL3:
  LR r30 = r12
BL4:
  C cr7 = r0, r28
  BF BL10, cr7, lt
BL5:
  LR r28 = r0
  B BL10
BL6:
  C cr6 = r0, r30
  BF BL8, cr6, gt
BL7:
  LR r30 = r0
BL8:
  C cr7 = r12, r28
  BF BL10, cr7, lt
BL9:
  LR r28 = r12
BL10:
  AI r29 = r29, 2
  C cr4 = r29, r27
  BT BL1, cr4, lt
BL11:
  CALL print(r28)
  CALL print(r30)
  RET
}
)";

BlockId blockByLabel(const Function &F, const std::string &Label) {
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    if (F.block(B).label() == Label)
      return B;
  ADD_FAILURE() << "no block " << Label;
  return InvalidId;
}

} // namespace

//===----------------------------------------------------------------------===
// DiGraph utilities
//===----------------------------------------------------------------------===

TEST(GraphTest, ReversePostOrderStartsAtEntry) {
  DiGraph G(4, 0);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(1, 3);
  G.addEdge(2, 3);
  std::vector<unsigned> RPO = reversePostOrder(G);
  ASSERT_EQ(RPO.size(), 4u);
  EXPECT_EQ(RPO.front(), 0u);
  EXPECT_EQ(RPO.back(), 3u);
}

TEST(GraphTest, ReachableFrom) {
  DiGraph G(5, 0);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(3, 4); // disconnected
  BitSet R = reachableFrom(G, 0);
  EXPECT_TRUE(R.test(0));
  EXPECT_TRUE(R.test(2));
  EXPECT_FALSE(R.test(3));
  EXPECT_FALSE(R.test(4));
}

TEST(GraphTest, AcyclicDetection) {
  DiGraph Acyclic(3, 0);
  Acyclic.addEdge(0, 1);
  Acyclic.addEdge(1, 2);
  EXPECT_TRUE(isAcyclic(Acyclic));

  DiGraph Cyclic(3, 0);
  Cyclic.addEdge(0, 1);
  Cyclic.addEdge(1, 2);
  Cyclic.addEdge(2, 1);
  EXPECT_FALSE(isAcyclic(Cyclic));
}

TEST(GraphTest, TopologicalOrderRespectsEdges) {
  DiGraph G(5, 0);
  G.addEdge(0, 2);
  G.addEdge(0, 1);
  G.addEdge(1, 3);
  G.addEdge(2, 3);
  G.addEdge(3, 4);
  std::vector<unsigned> Order = topologicalOrder(G);
  ASSERT_EQ(Order.size(), 5u);
  std::vector<unsigned> Pos(5);
  for (unsigned I = 0; I != Order.size(); ++I)
    Pos[Order[I]] = I;
  for (unsigned N = 0; N != 5; ++N)
    for (unsigned S : G.Succs[N])
      EXPECT_LT(Pos[N], Pos[S]);
}

TEST(GraphTest, AllPairsReachabilityHandlesCycles) {
  DiGraph G(3, 0);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 1); // cycle 1 <-> 2
  std::vector<BitSet> Reach = allPairsReachability(G);
  EXPECT_TRUE(Reach[0].test(2));
  EXPECT_TRUE(Reach[1].test(1)); // on a cycle through itself
  EXPECT_TRUE(Reach[2].test(1));
  EXPECT_FALSE(Reach[1].test(0));
}

//===----------------------------------------------------------------------===
// Dominators
//===----------------------------------------------------------------------===

TEST(DomTest, Diamond) {
  DiGraph G(4, 0);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(1, 3);
  G.addEdge(2, 3);
  DomTree D(G);
  EXPECT_EQ(D.idom(1), 0u);
  EXPECT_EQ(D.idom(2), 0u);
  EXPECT_EQ(D.idom(3), 0u);
  EXPECT_TRUE(D.dominates(0, 3));
  EXPECT_FALSE(D.dominates(1, 3));
  EXPECT_TRUE(D.dominates(3, 3));
  EXPECT_TRUE(D.strictlyDominates(0, 1));
  EXPECT_FALSE(D.strictlyDominates(0, 0));
}

TEST(DomTest, LoopDoesNotDisturbDominance) {
  // 0 -> 1 -> 2 -> 1 (back edge), 2 -> 3
  DiGraph G(4, 0);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 1);
  G.addEdge(2, 3);
  DomTree D(G);
  EXPECT_EQ(D.idom(1), 0u);
  EXPECT_EQ(D.idom(2), 1u);
  EXPECT_EQ(D.idom(3), 2u);
}

TEST(DomTest, UnreachableNodes) {
  DiGraph G(3, 0);
  G.addEdge(0, 1);
  DomTree D(G);
  EXPECT_TRUE(D.isReachable(1));
  EXPECT_FALSE(D.isReachable(2));
  EXPECT_FALSE(D.dominates(0, 2));
}

TEST(PostDomTest, Diamond) {
  DiGraph G(4, 0);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(1, 3);
  G.addEdge(2, 3);
  PostDomTree PD(G);
  EXPECT_TRUE(PD.postDominates(3, 0));
  EXPECT_FALSE(PD.postDominates(1, 0));
  EXPECT_TRUE(PD.postDominates(3, 1));
  // areEquivalent: 0 and 3 are equivalent (0 dom 3, 3 pdom 0).
  DomTree D(G);
  EXPECT_TRUE(areEquivalent(D, PD, 0, 3));
  EXPECT_FALSE(areEquivalent(D, PD, 0, 1));
}

TEST(PostDomTest, ExtraExits) {
  // 0 -> 1 -> 2, and node 1 also leaves the region (extra exit): 2 no
  // longer postdominates 0.
  DiGraph G(3, 0);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  PostDomTree NoExtra(G);
  EXPECT_TRUE(NoExtra.postDominates(2, 0));
  PostDomTree WithExtra(G, {1});
  EXPECT_FALSE(WithExtra.postDominates(2, 0));
  EXPECT_TRUE(WithExtra.postDominates(1, 0));
}

//===----------------------------------------------------------------------===
// Minmax dominance ground truth (paper Figure 3)
//===----------------------------------------------------------------------===

TEST(DomTest, MinmaxGroundTruth) {
  auto M = parseModuleOrDie(MinmaxFull);
  const Function &F = *M->functions()[0];
  DiGraph G = buildCFG(F);
  DomTree D(G);
  PostDomTree PD(G);

  BlockId BL1 = blockByLabel(F, "BL1"), BL2 = blockByLabel(F, "BL2"),
          BL4 = blockByLabel(F, "BL4"), BL5 = blockByLabel(F, "BL5"),
          BL6 = blockByLabel(F, "BL6"), BL8 = blockByLabel(F, "BL8"),
          BL10 = blockByLabel(F, "BL10");

  // BL1 dominates everything in the loop; BL10 postdominates the loop.
  for (BlockId B : {BL2, BL4, BL5, BL6, BL8, BL10})
    EXPECT_TRUE(D.dominates(BL1, B));
  for (BlockId B : {BL1, BL2, BL4, BL5, BL6, BL8})
    EXPECT_TRUE(PD.postDominates(BL10, B));

  // The paper's equivalent pairs (Definition 3): BL1~BL10, BL2~BL4,
  // BL6~BL8.
  EXPECT_TRUE(areEquivalent(D, PD, BL1, BL10));
  EXPECT_TRUE(areEquivalent(D, PD, BL2, BL4));
  EXPECT_TRUE(areEquivalent(D, PD, BL6, BL8));
  // Non-equivalent pairs.
  EXPECT_FALSE(areEquivalent(D, PD, BL1, BL2));
  EXPECT_FALSE(areEquivalent(D, PD, BL2, BL5));
  EXPECT_FALSE(areEquivalent(D, PD, BL2, BL6));
}

//===----------------------------------------------------------------------===
// Loops
//===----------------------------------------------------------------------===

TEST(LoopTest, MinmaxSingleLoop) {
  auto M = parseModuleOrDie(MinmaxFull);
  const Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  ASSERT_EQ(LI.numLoops(), 1u);
  const Loop &L = LI.loop(0);
  EXPECT_EQ(L.Header, blockByLabel(F, "BL1"));
  EXPECT_EQ(L.numBlocks(), 10u);
  EXPECT_EQ(L.Depth, 1u);
  EXPECT_EQ(L.Parent, -1);
  EXPECT_TRUE(LI.isReducible());
  EXPECT_EQ(LI.innermostLoopOf(blockByLabel(F, "BL5")), 0);
  EXPECT_EQ(LI.innermostLoopOf(blockByLabel(F, "BL0")), -1);
  EXPECT_EQ(LI.innermostLoopOf(blockByLabel(F, "BL11")), -1);
}

TEST(LoopTest, NestedLoops) {
  auto M = parseModuleOrDie(R"(
func nest {
B0:
  LI r1 = 0
OUTER:
  LI r2 = 0
INNER:
  AI r2 = r2, 1
  CI cr0 = r2, 10
  BT INNER, cr0, lt
AFTER:
  AI r1 = r1, 1
  CI cr1 = r1, 10
  BT OUTER, cr1, lt
EXIT:
  RET
}
)");
  const Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  ASSERT_EQ(LI.numLoops(), 2u);

  int InnerIdx = LI.innermostLoopOf(blockByLabel(F, "INNER"));
  ASSERT_GE(InnerIdx, 0);
  const Loop &Inner = LI.loop(InnerIdx);
  EXPECT_EQ(Inner.Depth, 2u);
  ASSERT_GE(Inner.Parent, 0);
  const Loop &Outer = LI.loop(Inner.Parent);
  EXPECT_EQ(Outer.Depth, 1u);
  EXPECT_EQ(Outer.Header, blockByLabel(F, "OUTER"));
  EXPECT_EQ(Inner.numBlocks(), 1u);
  EXPECT_EQ(Outer.numBlocks(), 3u);

  // Innermost-first ordering.
  std::vector<unsigned> Order = LI.innermostFirstOrder();
  EXPECT_EQ(static_cast<int>(Order[0]), InnerIdx);
}

TEST(LoopTest, IrreducibleDetected) {
  // Two-entry cycle: B1 <-> B2, entered at both B1 and B2.
  auto M = parseModuleOrDie(R"(
func irr {
B0:
  LI r1 = 0
  CI cr0 = r1, 5
  BT B2, cr0, lt
B1:
  CI cr1 = r1, 7
  BT B2, cr1, lt
B3:
  RET
B2:
  CI cr2 = r1, 9
  BT B1, cr2, lt
B4:
  RET
}
)");
  LoopInfo LI = LoopInfo::compute(*M->functions()[0]);
  EXPECT_FALSE(LI.isReducible());
}

//===----------------------------------------------------------------------===
// Liveness
//===----------------------------------------------------------------------===

TEST(LivenessTest, StraightLine) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 1
  CI cr0 = r1, 0
  BT B2, cr0, gt
B1:
  LI r2 = 5
B2:
  AI r3 = r1, 1
  RET r3
}
)");
  const Function &F = *M->functions()[0];
  Liveness LV = Liveness::compute(F);
  BlockId B0 = 0, B1 = 1, B2 = 2;
  // r1 used in B2: live out of B0 and B1.
  EXPECT_TRUE(LV.isLiveOut(B0, Reg::gpr(1)));
  EXPECT_TRUE(LV.isLiveOut(B1, Reg::gpr(1)));
  // r2 defined in B1 but never used: dead.
  EXPECT_FALSE(LV.isLiveOut(B1, Reg::gpr(2)));
  // r3 defined and used within B2 only.
  EXPECT_FALSE(LV.isLiveOut(B2, Reg::gpr(3)));
  EXPECT_FALSE(LV.isLiveIn(B0, Reg::gpr(1)));
  EXPECT_TRUE(LV.isLiveIn(B2, Reg::gpr(1)));
}

TEST(LivenessTest, PaperSection53Example) {
  // The x=5 / x=3 example of Section 5.3: x (r1) is NOT live on exit from
  // B1 originally, so one assignment may move up; after simulating that
  // motion, x becomes live on exit from B1.
  auto M = parseModuleOrDie(R"(
func f {
B1:
  C cr0 = r8, r9
  BF B3, cr0, gt
B2:
  LI r1 = 5
  B B4
B3:
  LI r1 = 3
B4:
  CALL print(r1)
  RET
}
)");
  Function &F = *M->functions()[0];
  Liveness LV = Liveness::compute(F);
  BlockId B1 = blockByLabel(F, "B1");
  EXPECT_FALSE(LV.isLiveOut(B1, Reg::gpr(1)));
  EXPECT_TRUE(LV.isLiveOut(blockByLabel(F, "B2"), Reg::gpr(1)));

  // Simulate moving "LI r1 = 5" from B2 into B1 and recompute.
  BlockId B2 = blockByLabel(F, "B2");
  InstrId Moved = F.block(B2).instrs()[0];
  F.block(B2).instrs().erase(F.block(B2).instrs().begin());
  auto &B1Instrs = F.block(B1).instrs();
  B1Instrs.insert(B1Instrs.begin(), Moved);
  Liveness LV2 = Liveness::compute(F);
  EXPECT_TRUE(LV2.isLiveOut(B1, Reg::gpr(1)));
}

TEST(LivenessTest, LoopCarriedValue) {
  auto M = parseModuleOrDie(MinmaxFull);
  const Function &F = *M->functions()[0];
  Liveness LV = Liveness::compute(F);
  // min (r28) and max (r30) are live out of every loop block (used by the
  // prints after the loop and carried around the loop).
  for (const char *Label : {"BL1", "BL2", "BL5", "BL10"}) {
    BlockId B = blockByLabel(F, Label);
    EXPECT_TRUE(LV.isLiveOut(B, Reg::gpr(28))) << Label;
    EXPECT_TRUE(LV.isLiveOut(B, Reg::gpr(30))) << Label;
  }
  // cr7 is consumed within the loop; not live out of BL10.
  EXPECT_FALSE(LV.isLiveOut(blockByLabel(F, "BL10"), Reg::cr(7)));
  // cr4 is consumed by BL10's branch; not live out of BL11.
  EXPECT_FALSE(LV.isLiveOut(blockByLabel(F, "BL11"), Reg::cr(4)));
}

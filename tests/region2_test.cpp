//===- tests/region2_test.cpp - Additional region/CSPDG coverage -----------===//
//
// Deeper-structure cases: nested loops as barriers in control and data
// dependences, single-block regions, speculation degrees through chains,
// and the interpreter's call-depth guard.
//
//===----------------------------------------------------------------------===//

#include "analysis/ControlDeps.h"
#include "analysis/PDG.h"
#include "analysis/Region.h"
#include "frontend/CodeGen.h"
#include "sched/GlobalScheduler.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

BlockId blockByLabel(const Function &F, const std::string &Label) {
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    if (F.block(B).label() == Label)
      return B;
  ADD_FAILURE() << "no block " << Label;
  return InvalidId;
}

} // namespace

TEST(Region2Test, SingleBlockRegion) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 1
  AI r2 = r1, 2
  RET r2
}
)");
  Function &F = *M->functions()[0];
  SchedRegion R = SchedRegion::buildSingleBlock(F, 0);
  EXPECT_EQ(R.numNodes(), 1u);
  EXPECT_EQ(R.numRealBlocks(), 1u);
  EXPECT_EQ(R.numInstrs(), 3u);
  EXPECT_EQ(R.entryNode(), 0u);
  EXPECT_EQ(R.nodeOfBlock(0), 0);
  EXPECT_TRUE(R.exitNodes().empty());
  ASSERT_EQ(R.topoOrder().size(), 1u);

  // The degenerate region still supports a full PDG build.
  PDG P = PDG::build(F, R, MachineDescription::rs6k());
  EXPECT_EQ(P.dataDeps().numNodes(), 3u);
  EXPECT_TRUE(P.controlDeps().deps(0).empty());
}

TEST(Region2Test, SummaryNodeCarriesRegisterPayload) {
  auto M = parseModuleOrDie(R"(
func f {
PRE:
  LI r1 = 0
LOOP:
  AI r1 = r1, 1
  L r5 = mem[r9 + 0]
  C cr0 = r1, r8
  BT LOOP, cr0, lt
POST:
  RET r1
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion Top = SchedRegion::build(F, LI, -1);
  const RegionNode *Summary = nullptr;
  for (const RegionNode &N : Top.nodes())
    if (N.isLoopSummary())
      Summary = &N;
  ASSERT_NE(Summary, nullptr);
  // The barrier aggregates the loop's register traffic.
  auto Contains = [](const std::vector<Reg> &V, Reg R) {
    return std::find(V.begin(), V.end(), R) != V.end();
  };
  EXPECT_TRUE(Contains(Summary->SummaryDefs, Reg::gpr(1)));
  EXPECT_TRUE(Contains(Summary->SummaryDefs, Reg::gpr(5)));
  EXPECT_TRUE(Contains(Summary->SummaryDefs, Reg::cr(0)));
  EXPECT_TRUE(Contains(Summary->SummaryUses, Reg::gpr(9)));
  EXPECT_TRUE(Contains(Summary->SummaryUses, Reg::gpr(8)));
}

TEST(Region2Test, SpeculationDegreeThroughChain) {
  // A three-deep nest of ifs: each level is one more gambled branch.
  auto M = parseModuleOrDie(R"(
func f {
L0:
  C cr0 = r1, r2
  BF OUT, cr0, gt
L1:
  C cr1 = r1, r3
  BF OUT, cr1, gt
L2:
  C cr2 = r1, r4
  BF OUT, cr2, gt
L3:
  AI r5 = r5, 1
OUT:
  RET r5
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  ControlDeps CD = ControlDeps::compute(R);
  auto Node = [&](const char *L) {
    return static_cast<unsigned>(R.nodeOfBlock(blockByLabel(F, L)));
  };
  EXPECT_EQ(CD.specDegree(Node("L0"), Node("L1")), std::optional<unsigned>(1));
  EXPECT_EQ(CD.specDegree(Node("L0"), Node("L2")), std::optional<unsigned>(2));
  EXPECT_EQ(CD.specDegree(Node("L0"), Node("L3")), std::optional<unsigned>(3));
  EXPECT_EQ(CD.specDegree(Node("L1"), Node("L3")), std::optional<unsigned>(2));

  // Candidate blocks grow by one CSPDG step per depth unit.  OUT is in
  // every candidate set: it postdominates everything, so it is
  // *equivalent* to L0 (both always execute).
  PDG P = PDG::build(F, R, MachineDescription::rs6k());
  EXPECT_EQ(P.candidateBlocks(Node("L0"), 1).size(), 2u); // {OUT, L1}
  EXPECT_EQ(P.candidateBlocks(Node("L0"), 2).size(), 3u); // + {L2}
  EXPECT_EQ(P.candidateBlocks(Node("L0"), 3).size(), 4u); // + {L3}
  std::vector<unsigned> C1 = P.candidateBlocks(Node("L0"), 1);
  EXPECT_NE(std::find(C1.begin(), C1.end(), Node("L1")), C1.end());
  EXPECT_NE(std::find(C1.begin(), C1.end(), Node("OUT")), C1.end());
}

TEST(Region2Test, DeepSpeculationMovesThroughChain) {
  // With MaxSpecDepth = 3, the innermost compare can hoist all the way up
  // (each level's compare is independent of the branches above it).
  auto Schedule = [](unsigned Depth) {
    auto M = parseModuleOrDie(R"(
func f {
L0:
  C cr0 = r1, r2
  BF OUT, cr0, gt
L1:
  C cr1 = r1, r3
  BF OUT, cr1, gt
L2:
  C cr2 = r1, r4
  BF OUT, cr2, gt
L3:
  AI r5 = r5, 1
OUT:
  RET r5
}
)");
    Function &F = *M->functions()[0];
    LoopInfo LI = LoopInfo::compute(F);
    SchedRegion R = SchedRegion::build(F, LI, -1);
    GlobalSchedOptions Opts;
    Opts.Level = SchedLevel::Speculative;
    Opts.MaxSpecDepth = Depth;
    GlobalScheduler GS(MachineDescription::rs6k(), Opts);
    GlobalSchedStats Stats = GS.scheduleRegion(F, R);
    return Stats.SpeculativeMotions;
  };
  // Depth 1 can only reach L1's compare; deeper settings reach more.
  EXPECT_LT(Schedule(1), Schedule(3));
}

TEST(Region2Test, CallDepthLimitTraps) {
  auto M = compileMiniCOrDie(R"(
int spin(int n) { return spin(n + 1); }
int main() { return spin(0); }
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->findFunction("main"));
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapReason.find("depth"), std::string::npos);
}

TEST(Region2Test, EquivalenceAcrossLoopSummary) {
  // PRE and POST sandwich an always-executed loop: they are equivalent in
  // the top-level region, with the loop summary between them.
  auto M = parseModuleOrDie(R"(
func f {
PRE:
  LI r1 = 0
  LI r7 = 5
  L r3 = mem[r2 + 0]
  AI r4 = r3, 1
LOOP:
  AI r1 = r1, 1
  C cr0 = r1, r8
  BT LOOP, cr0, lt
POST:
  AI r7 = r7, 1
  A r7 = r7, r4
  RET r7
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  PDG P = PDG::build(F, R, MachineDescription::rs6k());
  unsigned Pre = static_cast<unsigned>(R.nodeOfBlock(blockByLabel(F, "PRE")));
  unsigned Post =
      static_cast<unsigned>(R.nodeOfBlock(blockByLabel(F, "POST")));
  std::vector<unsigned> Equiv = P.equivSet(Pre);
  EXPECT_NE(std::find(Equiv.begin(), Equiv.end(), Post), Equiv.end());

  // And scheduling PRE can usefully hoist POST's r7 increment (which is
  // independent of the loop) across the summary barrier, into the delay
  // slot of PRE's load (per the paper, externals are only taken while A's
  // own instructions are still being scheduled).
  GlobalSchedOptions Opts;
  Opts.Level = SchedLevel::Useful;
  GlobalScheduler GS(MachineDescription::rs6k(), Opts);
  GlobalSchedStats Stats = GS.scheduleRegion(F, R);
  EXPECT_GE(Stats.UsefulMotions, 1u);
  // The hoisted instruction is POST's "AI r7 = r7, 1".
  bool HoistedAI = false;
  for (InstrId I : F.block(blockByLabel(F, "PRE")).instrs()) {
    const Instruction &Ins = F.instr(I);
    HoistedAI |= Ins.opcode() == Opcode::AI && Ins.definesReg(Reg::gpr(7));
  }
  EXPECT_TRUE(HoistedAI);
}

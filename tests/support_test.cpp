//===- tests/support_test.cpp - Support library tests ----------------------===//

#include "support/BitSet.h"
#include "support/Format.h"
#include "support/RNG.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <set>

using namespace gis;

//===----------------------------------------------------------------------===
// BitSet
//===----------------------------------------------------------------------===

TEST(BitSetTest, SetResetTest) {
  BitSet B(130);
  EXPECT_EQ(B.size(), 130u);
  EXPECT_TRUE(B.empty());
  B.set(0);
  B.set(64);
  B.set(129);
  EXPECT_TRUE(B.test(0));
  EXPECT_TRUE(B.test(64));
  EXPECT_TRUE(B.test(129));
  EXPECT_FALSE(B.test(1));
  EXPECT_EQ(B.count(), 3u);
  B.reset(64);
  EXPECT_FALSE(B.test(64));
  EXPECT_EQ(B.count(), 2u);
  B.clear();
  EXPECT_TRUE(B.empty());
}

TEST(BitSetTest, SetAlgebra) {
  BitSet A(100), B(100);
  A.set(3);
  A.set(50);
  B.set(50);
  B.set(99);

  BitSet U = A;
  EXPECT_TRUE(U.unionWith(B));
  EXPECT_TRUE(U.test(3) && U.test(50) && U.test(99));
  EXPECT_FALSE(U.unionWith(B)); // no change the second time

  BitSet I = A;
  EXPECT_TRUE(I.intersectWith(B));
  EXPECT_EQ(I.count(), 1u);
  EXPECT_TRUE(I.test(50));

  BitSet D = A;
  EXPECT_TRUE(D.subtract(B));
  EXPECT_EQ(D.count(), 1u);
  EXPECT_TRUE(D.test(3));

  EXPECT_TRUE(A.anyCommon(B));
  EXPECT_FALSE(D.anyCommon(B));
}

TEST(BitSetTest, ForEachAscending) {
  BitSet B(200);
  std::vector<unsigned> Expect = {0, 63, 64, 65, 128, 199};
  for (unsigned E : Expect)
    B.set(E);
  std::vector<unsigned> Got;
  B.forEach([&](unsigned I) { Got.push_back(I); });
  EXPECT_EQ(Got, Expect);
}

TEST(BitSetTest, MatchesStdSetReference) {
  RNG R(42);
  BitSet B(257);
  std::set<unsigned> Ref;
  for (int K = 0; K != 500; ++K) {
    unsigned I = static_cast<unsigned>(R.nextBelow(257));
    if (R.chancePercent(50)) {
      B.set(I);
      Ref.insert(I);
    } else {
      B.reset(I);
      Ref.erase(I);
    }
  }
  EXPECT_EQ(B.count(), Ref.size());
  for (unsigned I = 0; I != 257; ++I)
    EXPECT_EQ(B.test(I), Ref.count(I) > 0) << I;
}

TEST(BitSetTest, EqualityIncludesSize) {
  BitSet A(10), B(10), C(11);
  EXPECT_TRUE(A == B);
  EXPECT_FALSE(A == C);
  A.set(5);
  EXPECT_FALSE(A == B);
}

//===----------------------------------------------------------------------===
// RNG
//===----------------------------------------------------------------------===

TEST(RNGTest, DeterministicPerSeed) {
  RNG A(7), B(7), C(8);
  for (int K = 0; K != 100; ++K) {
    uint64_t X = A.next();
    EXPECT_EQ(X, B.next());
    (void)C.next();
  }
  RNG A2(7), C2(8);
  EXPECT_NE(A2.next(), C2.next());
}

TEST(RNGTest, RangeIsInclusive) {
  RNG R(123);
  bool SawLo = false, SawHi = false;
  for (int K = 0; K != 2000; ++K) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RNGTest, ChancePercentExtremes) {
  RNG R(5);
  for (int K = 0; K != 100; ++K) {
    EXPECT_FALSE(R.chancePercent(0));
    EXPECT_TRUE(R.chancePercent(100));
  }
}

//===----------------------------------------------------------------------===
// Formatting and strings
//===----------------------------------------------------------------------===

TEST(FormatTest, FormatString) {
  EXPECT_EQ(formatString("x=%d y=%s", 42, "abc"), "x=42 y=abc");
  EXPECT_EQ(formatString("%lld", static_cast<long long>(-7)), "-7");
  EXPECT_EQ(formatString("no args"), "no args");
  // Long output beyond any small static buffer.
  std::string Long = formatString("%0200d", 5);
  EXPECT_EQ(Long.size(), 200u);
}

TEST(FormatTest, Padding) {
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("abcdef", 3), "abcdef");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtilsTest, Split) {
  auto P = split("a,b,,c", ',');
  ASSERT_EQ(P.size(), 3u);
  EXPECT_EQ(P[0], "a");
  EXPECT_EQ(P[2], "c");
  auto Q = split("a,b,,c", ',', /*KeepEmpty=*/true);
  ASSERT_EQ(Q.size(), 4u);
  EXPECT_EQ(Q[2], "");
  EXPECT_TRUE(split("", ',').empty());
}

TEST(StringUtilsTest, StartsEndsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(endsWith("foobar", "bar"));
  EXPECT_FALSE(endsWith("ar", "bar"));
  EXPECT_TRUE(startsWith("x", ""));
  EXPECT_TRUE(endsWith("x", ""));
}

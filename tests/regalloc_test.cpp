//===- tests/regalloc_test.cpp - Register allocation tests -----------------===//
//
// The finite-register backend (src/regalloc/): live-interval construction,
// the linear-scan allocator with spilling, the schedule -> allocate ->
// reschedule pipeline flow, and the schedule-cache fingerprints that keep
// allocated code from leaking across register-file configurations.
//
// Labelled "regalloc" (tests/CMakeLists.txt); scripts/check.sh runs the
// label under both ASan and TSan.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "engine/CompileEngine.h"
#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "regalloc/LinearScan.h"
#include "regalloc/LiveIntervals.h"
#include "sched/Pipeline.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace gis;

namespace {

struct Observed {
  bool Trapped;
  std::string TrapReason;
  std::vector<int64_t> Printed;
  int64_t ReturnValue;
  std::vector<std::pair<int64_t, int64_t>> Memory;
};

/// Runs `main` of \p M and captures everything observable (spill slots are
/// interpreter-private, so allocated code must leave Memory untouched).
Observed observe(const Module &M) {
  Observed O;
  Interpreter I(M);
  Function *Main = const_cast<Module &>(M).findFunction("main");
  EXPECT_NE(Main, nullptr);
  ExecResult R = I.run(*Main, 50'000'000);
  O.TrapReason = R.TrapReason;
  O.Trapped = R.Trapped;
  O.Printed = R.Printed;
  O.ReturnValue = R.ReturnValue;
  for (const auto &[Addr, Val] : I.memory())
    if (Val != 0)
      O.Memory.emplace_back(Addr, Val);
  std::sort(O.Memory.begin(), O.Memory.end());
  return O;
}

void expectSameBehaviour(const Module &Base, const Module &Alloc,
                         const std::string &Source) {
  Observed A = observe(Base);
  if (A.Trapped && A.TrapReason == "step budget exhausted")
    return; // pathological long-runner; the in-pipeline oracle covered it
  Observed B = observe(Alloc);
  ASSERT_FALSE(A.Trapped) << Source;
  ASSERT_FALSE(B.Trapped) << Source;
  EXPECT_EQ(A.Printed, B.Printed) << Source;
  EXPECT_EQ(A.ReturnValue, B.ReturnValue) << Source;
  EXPECT_EQ(A.Memory, B.Memory) << Source;
}

/// Every register of every function must be a physical index below the
/// machine's file size -- the allocator's whole contract.
void expectPhysical(const Module &M, const MachineDescription &MD) {
  for (const auto &F : M.functions()) {
    auto Check = [&](Reg R) {
      ASSERT_TRUE(R.isValid());
      EXPECT_LT(R.index(), MD.numRegs(R.regClass())) << F->name();
    };
    for (Reg P : F->params())
      Check(P);
    for (BlockId B : F->layout())
      for (InstrId Id : F->block(B).instrs()) {
        for (Reg D : F->instr(Id).defs())
          Check(D);
        for (Reg U : F->instr(Id).uses())
          Check(U);
      }
  }
}

/// The pipeline configurations of the transactional fuzz suite, here each
/// additionally run through allocation + post-allocation rescheduling.
PipelineOptions configOpts(int Config) {
  PipelineOptions Opts;
  switch (Config) {
  case 0:
    Opts.Level = SchedLevel::None;
    break;
  case 1:
    Opts.Level = SchedLevel::Useful;
    Opts.EnableUnroll = false;
    Opts.EnableRotate = false;
    break;
  case 2:
    Opts.Level = SchedLevel::Speculative;
    break;
  case 3:
    Opts.Level = SchedLevel::Speculative;
    Opts.AllowDuplication = true;
    break;
  default:
    ADD_FAILURE();
  }
  Opts.AllocateRegisters = true;
  return Opts;
}

std::string diagDump(const PipelineStats &Stats) {
  std::string Out;
  for (const Diagnostic &D : Stats.Diags)
    Out += D.str() + "\n";
  return Out;
}

/// Ten simultaneously-live scalars: allocates cleanly at RS/6000 sizes
/// and forces heavy spilling on shrunken GPR files (never a rollback --
/// no parameters, trivial CR pressure).
const char *ManyLiveSource = R"(
  int main() {
    int a = 1; int b = 2; int c = 3; int d = 4;
    int e = 5; int f = 6; int g = 7; int h = 8;
    int i = 0;
    int s = 0;
    while (i < 10) {
      s = s + a + b + c + d + e + f + g + h;
      i = i + 1;
    }
    print(s);
    return s - a - h;
  }
)";

} // namespace

//===----------------------------------------------------------------------===
// Oracle fuzz: schedule -> allocate -> reschedule at RS/6000 sizes
//===----------------------------------------------------------------------===

class RegAllocOracleTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

// 50 seeds x 4 configs = 200 random programs through the full pipeline
// with allocation on, differentially executed after every transaction
// (including "regalloc" and "postalloc").  At RS/6000 register-file sizes
// allocation must always succeed, and the allocated module must be fully
// physical and behave identically.
TEST_P(RegAllocOracleTest, AllocatedCodeBehavesIdentically) {
  auto [Seed, Config] = GetParam();
  std::string Source = generateRandomMiniC(Seed);
  CompileResult Base = compileMiniC(Source);
  ASSERT_TRUE(Base.ok()) << Base.Error << "\n" << Source;
  CompileResult Alloc = compileMiniC(Source);
  ASSERT_TRUE(Alloc.ok());

  MachineDescription MD = MachineDescription::rs6k();
  PipelineOptions Opts = configOpts(Config);
  Opts.EnableOracle = true;
  Opts.OracleMaxSteps = 200'000;
  PipelineStats Stats = scheduleModule(*Alloc.M, MD, Opts);

  EXPECT_EQ(Stats.OracleMismatches, 0u) << diagDump(Stats) << Source;
  EXPECT_EQ(Stats.VerifierFailures, 0u) << diagDump(Stats) << Source;
  // GPRs and FPRs spill, so their allocation never fails at these sizes.
  // Condition registers cannot spill (LinearScan.h): when the pressure-
  // oblivious scheduler leaves more than 8 CRs live -- rare but real,
  // especially under duplication -- the allocation must roll back cleanly
  // to symbolic registers, which the behaviour check below still covers.
  bool CrOverflow = Stats.PressurePeak[2] > MD.numRegs(RegClass::CR);
  if (!CrOverflow) {
    EXPECT_EQ(Stats.EngineFailures, 0u) << diagDump(Stats) << Source;
    EXPECT_EQ(Stats.RegAllocFailures, 0u) << diagDump(Stats) << Source;
    EXPECT_EQ(Stats.RegionsRolledBack + Stats.TransformsRolledBack, 0u)
        << diagDump(Stats) << Source;
  }
  ASSERT_TRUE(verifyModule(*Alloc.M).empty()) << Source;
  if (Stats.RegAllocFailures == 0)
    expectPhysical(*Alloc.M, MD);
  expectSameBehaviour(*Base.M, *Alloc.M, Source);
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, RegAllocOracleTest,
    ::testing::Combine(::testing::Range<uint64_t>(1, 51),
                       ::testing::Values(0, 1, 2, 3)));

//===----------------------------------------------------------------------===
// Tiny register files: spilling under pressure stays behaviour-preserving
//===----------------------------------------------------------------------===

class RegAllocSmallFileTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, unsigned>> {};

// Shrunken GPR files force spill code through real programs.  A program
// the allocator cannot handle (e.g. more spilled parameters than scratch
// registers) must roll back cleanly; either way behaviour is unchanged.
TEST_P(RegAllocSmallFileTest, SpillingPreservesBehaviour) {
  auto [Seed, Gprs] = GetParam();
  std::string Source = generateRandomMiniC(Seed);
  CompileResult Base = compileMiniC(Source);
  ASSERT_TRUE(Base.ok()) << Base.Error << "\n" << Source;
  CompileResult Alloc = compileMiniC(Source);
  ASSERT_TRUE(Alloc.ok());

  MachineDescription MD = MachineDescription::rs6k();
  MD.setNumRegs(RegClass::GPR, Gprs);
  PipelineOptions Opts;
  Opts.AllocateRegisters = true;
  Opts.EnableOracle = true;
  Opts.OracleMaxSteps = 200'000;
  PipelineStats Stats = scheduleModule(*Alloc.M, MD, Opts);

  EXPECT_EQ(Stats.OracleMismatches, 0u) << diagDump(Stats) << Source;
  EXPECT_EQ(Stats.VerifierFailures, 0u) << diagDump(Stats) << Source;
  ASSERT_TRUE(verifyModule(*Alloc.M).empty()) << Source;
  if (Stats.RegAllocFailures == 0)
    expectPhysical(*Alloc.M, MD);
  expectSameBehaviour(*Base.M, *Alloc.M, Source);
}

INSTANTIATE_TEST_SUITE_P(
    ShrunkenFiles, RegAllocSmallFileTest,
    ::testing::Combine(::testing::Range<uint64_t>(1, 13),
                       ::testing::Values(8u, 6u, 4u)));

//===----------------------------------------------------------------------===
// Forced spill: 4 GPRs (2 allocatable + 2 scratch)
//===----------------------------------------------------------------------===

TEST(RegAllocTest, FourGprsForceSpills) {
  const char *Source = ManyLiveSource;
  CompileResult Base = compileMiniC(Source);
  ASSERT_TRUE(Base.ok()) << Base.Error;
  CompileResult Alloc = compileMiniC(Source);
  ASSERT_TRUE(Alloc.ok());

  MachineDescription MD = MachineDescription::rs6k();
  MD.setNumRegs(RegClass::GPR, 4);
  PipelineOptions Opts;
  Opts.AllocateRegisters = true;
  Opts.EnableOracle = true;
  PipelineStats Stats = scheduleModule(*Alloc.M, MD, Opts);

  EXPECT_EQ(Stats.RegAllocFailures, 0u) << diagDump(Stats);
  EXPECT_GT(Stats.RegAlloc.IntervalsSpilled, 0u);
  EXPECT_GT(Stats.RegAlloc.SpillStores, 0u);
  EXPECT_GT(Stats.RegAlloc.SpillReloads, 0u);
  EXPECT_GT(Stats.RegAlloc.SpillSlots, 0u);
  ASSERT_TRUE(verifyModule(*Alloc.M).empty());
  expectPhysical(*Alloc.M, MD);
  expectSameBehaviour(*Base.M, *Alloc.M, Source);
}

// Ample registers must produce zero spill code -- the E1 kernel relies on
// this (EXPERIMENTS.md E10: the staircase is unchanged with --regalloc).
TEST(RegAllocTest, AmpleRegistersSpillNothing) {
  std::string Source = generateRandomMiniC(7);
  CompileResult Alloc = compileMiniC(Source);
  ASSERT_TRUE(Alloc.ok());
  PipelineOptions Opts;
  Opts.AllocateRegisters = true;
  PipelineStats Stats =
      scheduleModule(*Alloc.M, MachineDescription::rs6k(), Opts);
  EXPECT_EQ(Stats.RegAllocFailures, 0u) << diagDump(Stats);
  EXPECT_GT(Stats.RegAlloc.IntervalsBuilt, 0u);
  EXPECT_EQ(Stats.RegAlloc.IntervalsSpilled, 0u);
  EXPECT_EQ(Stats.RegAlloc.SpillStores, 0u);
  EXPECT_EQ(Stats.RegAlloc.SpillReloads, 0u);
}

//===----------------------------------------------------------------------===
// Live intervals vs liveness: the over-approximation property
//===----------------------------------------------------------------------===

// An interval must cover every def and use of its register and the whole
// span of every block the register is live into or out of.  Consequently
// two simultaneously-live registers always have overlapping intervals --
// the soundness property the allocator's conflict test rests on.
TEST(LiveIntervalsTest, IntervalsCoverLiveness) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    std::string Source = generateRandomMiniC(Seed);
    CompileResult R = compileMiniC(Source);
    ASSERT_TRUE(R.ok()) << R.Error;
    PipelineOptions Opts; // schedule first: intervals of *scheduled* code
    scheduleModule(*R.M, MachineDescription::rs6k(), Opts);

    for (const auto &F : R.M->functions()) {
      F->recomputeCFG();
      LiveIntervals LIV = LiveIntervals::build(*F);
      for (Reg P : F->params()) {
        const LiveInterval *IV = LIV.intervalFor(P);
        ASSERT_NE(IV, nullptr);
        EXPECT_TRUE(IV->covers(0)) << F->name();
      }
      for (BlockId B : F->layout())
        for (InstrId Id : F->block(B).instrs()) {
          uint32_t Pos = LIV.positionOf(Id);
          const Instruction &I = F->instr(Id);
          for (Reg D : I.defs()) {
            const LiveInterval *IV = LIV.intervalFor(D);
            ASSERT_NE(IV, nullptr);
            EXPECT_TRUE(IV->covers(Pos)) << F->name();
          }
          for (Reg U : I.uses()) {
            const LiveInterval *IV = LIV.intervalFor(U);
            ASSERT_NE(IV, nullptr);
            EXPECT_TRUE(IV->covers(Pos)) << F->name();
          }
        }
      Liveness LV = Liveness::compute(*F);
      for (BlockId B : F->layout()) {
        auto [First, Last] = LIV.blockSpan(B);
        std::vector<Reg> In = LV.liveInRegs(B);
        for (Reg R2 : In) {
          const LiveInterval *IV = LIV.intervalFor(R2);
          ASSERT_NE(IV, nullptr);
          EXPECT_TRUE(IV->covers(First)) << F->name();
        }
        for (Reg R2 : LV.liveOutRegs(B)) {
          const LiveInterval *IV = LIV.intervalFor(R2);
          ASSERT_NE(IV, nullptr);
          EXPECT_TRUE(IV->covers(Last)) << F->name();
        }
        // Pairwise: simultaneously live => overlapping intervals.
        for (size_t X = 0; X != In.size(); ++X)
          for (size_t Y = X + 1; Y != In.size(); ++Y)
            EXPECT_TRUE(LIV.intervalFor(In[X])->overlaps(
                *LIV.intervalFor(In[Y])))
                << F->name();
      }
    }
  }
}

//===----------------------------------------------------------------------===
// Schedule-cache fingerprints: allocator settings partition the cache
//===----------------------------------------------------------------------===

TEST(RegAllocCacheTest, RegisterFilesChangeTheMachineFingerprint) {
  MachineDescription A = MachineDescription::rs6k();
  MachineDescription B = MachineDescription::rs6k();
  EXPECT_EQ(fingerprintMachine(A), fingerprintMachine(B));
  B.setNumRegs(RegClass::GPR, 8);
  EXPECT_NE(fingerprintMachine(A), fingerprintMachine(B));
  B = MachineDescription::rs6k();
  B.setNumRegs(RegClass::FPR, 16);
  EXPECT_NE(fingerprintMachine(A), fingerprintMachine(B));
  B = MachineDescription::rs6k();
  B.setNumRegs(RegClass::CR, 4);
  EXPECT_NE(fingerprintMachine(A), fingerprintMachine(B));
}

TEST(RegAllocCacheTest, AllocatorFlagsChangeTheOptionsFingerprint) {
  PipelineOptions A, B;
  EXPECT_EQ(fingerprintOptions(A), fingerprintOptions(B));
  B.AllocateRegisters = true;
  EXPECT_NE(fingerprintOptions(A), fingerprintOptions(B));
  A.AllocateRegisters = true;
  EXPECT_EQ(fingerprintOptions(A), fingerprintOptions(B));
  B.RescheduleAfterAlloc = false;
  EXPECT_NE(fingerprintOptions(A), fingerprintOptions(B));
}

// The regression the fingerprints exist for: a cache shared between two
// engines whose machines differ only in register-file size must never
// serve one configuration's schedule to the other -- a 32-GPR schedule
// replayed at 8 GPRs would silently undo the allocation.
TEST(RegAllocCacheTest, SharedCacheNeverCrossesRegisterLimits) {
  std::string Source = ManyLiveSource;
  PipelineOptions Opts;
  Opts.AllocateRegisters = true;

  ScheduleCache Shared;
  EngineOptions EOpts;
  EOpts.Jobs = 1;
  EOpts.SharedCache = &Shared;

  MachineDescription Wide = MachineDescription::rs6k();
  CompileResult M1 = compileMiniC(Source);
  ASSERT_TRUE(M1.ok());
  CompileEngine E1(Wide, Opts, EOpts);
  EngineReport R1 =
      E1.compileBatch({BatchItem{M1.M.get(), "wide"}});
  EXPECT_EQ(R1.CacheHits, 0u);

  MachineDescription Narrow = MachineDescription::rs6k();
  Narrow.setNumRegs(RegClass::GPR, 8);
  CompileResult M2 = compileMiniC(Source);
  ASSERT_TRUE(M2.ok());
  CompileEngine E2(Narrow, Opts, EOpts);
  EngineReport R2 =
      E2.compileBatch({BatchItem{M2.M.get(), "narrow"}});
  EXPECT_EQ(R2.CacheHits, 0u); // same IR + options, different machine
  expectPhysical(*M2.M, Narrow);

  // Same machine, allocation toggled: again no sharing.
  PipelineOptions NoAlloc;
  CompileResult M3 = compileMiniC(Source);
  ASSERT_TRUE(M3.ok());
  CompileEngine E3(Wide, NoAlloc, EOpts);
  EngineReport R3 =
      E3.compileBatch({BatchItem{M3.M.get(), "noalloc"}});
  EXPECT_EQ(R3.CacheHits, 0u);

  // And a true hit still works: identical machine + options replay.
  CompileResult M4 = compileMiniC(Source);
  ASSERT_TRUE(M4.ok());
  CompileEngine E4(Wide, Opts, EOpts);
  EngineReport R4 =
      E4.compileBatch({BatchItem{M4.M.get(), "replay"}});
  EXPECT_EQ(R4.CacheMisses, 0u);
  expectPhysical(*M4.M, Wide);
}

//===- tests/region_parallel_test.cpp - Region-parallel scheduling tests ---===//
//
// The region-equivalence harness for region-parallel scheduling
// (sched/Pipeline.cpp, analysis/RegionSlice.h):
//
//  1. Property test over the random-program corpus: the region-local
//     analysis views of a RegionSlice (dominators, liveness, CSPDG) must
//     agree with the whole-function analyses restricted to the region's
//     blocks.  This is the foundation the parallel scheduler stands on --
//     a region task consults only its slice, so the slice must never
//     disagree with what a whole-function run would have seen.
//
//  2. Determinism: scheduling with --region-jobs N is bit-identical to
//     sequential scheduling for every N, asserted on the printed IR and on
//     its 128-bit content hash, through both the raw pipeline and the
//     batch engine, cache on and off.  Because the output is invariant,
//     the schedule cache deliberately leaves RegionJobs out of its options
//     fingerprint; that sharing is asserted here too.
//
// This file is part of the `gis_parallel_tests` executable (ctest label
// "parallel"), which scripts/check.sh also runs under ThreadSanitizer.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/ControlDeps.h"
#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "analysis/Region.h"
#include "analysis/RegionSlice.h"
#include "engine/CompileEngine.h"
#include "frontend/CodeGen.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "sched/Pipeline.h"
#include "support/Hashing.h"
#include "support/ThreadPool.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace gis;

namespace {

/// Every register the function has ever numbered, all classes.
std::vector<Reg> allRegs(const Function &F) {
  std::vector<Reg> Regs;
  for (RegClass C : {RegClass::GPR, RegClass::FPR, RegClass::CR})
    for (unsigned K = 0; K != F.numRegs(C); ++K)
      Regs.push_back(Reg::make(C, K));
  return Regs;
}

//===----------------------------------------------------------------------===
// Satellite 1: slice analyses == whole-function analyses restricted to the
// region's blocks, over the random-program corpus.
//===----------------------------------------------------------------------===

TEST(RegionSliceTest, SliceAnalysesMatchWholeFunctionOnCorpus) {
  unsigned RegionsChecked = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    std::unique_ptr<Module> M = compileMiniCOrDie(generateRandomMiniC(Seed));
    for (const auto &FPtr : M->functions()) {
      Function &F = *FPtr;
      F.recomputeCFG();
      F.renumberOriginalOrder();
      LoopInfo LI = LoopInfo::compute(F);
      if (!LI.isReducible())
        continue; // regions require reducibility, as does the pipeline

      Liveness WholeLV = Liveness::compute(F);
      DomTree WholeDom(buildCFG(F));
      std::vector<Reg> Regs = allRegs(F);

      for (int LoopIdx = -1; LoopIdx < static_cast<int>(LI.numLoops());
           ++LoopIdx) {
        SchedRegion R = SchedRegion::build(F, LI, LoopIdx);
        RegionSlice S = RegionSlice::build(F, R, WholeLV);
        ++RegionsChecked;

        // -- Liveness: the slice solves the whole-function equations with
        // the out-of-region successors frozen; on an unedited function the
        // solution must coincide exactly with Liveness::compute.
        unsigned LiveMismatches = 0;
        for (BlockId B : S.blocks()) {
          ASSERT_TRUE(S.ownsBlock(B));
          for (Reg Rg : Regs) {
            if (S.liveness().isLiveIn(B, Rg) != WholeLV.isLiveIn(B, Rg))
              ++LiveMismatches;
            if (S.liveness().isLiveOut(B, Rg) != WholeLV.isLiveOut(B, Rg))
              ++LiveMismatches;
          }
        }
        EXPECT_EQ(LiveMismatches, 0u)
            << "seed " << Seed << " func " << F.name() << " loop " << LoopIdx;

        // -- Dominators: for two real blocks of one region, dominance on
        // the region's acyclic forward graph equals dominance on the full
        // CFG.  (A reducible loop is entered only through its header, and
        // removing back edges does not change dominators.)  Region
        // *post*dominators are intentionally different -- the region graph
        // routes loop exits to a virtual exit that the function CFG does
        // not have -- so no restricted postdominator comparison exists.
        unsigned DomMismatches = 0;
        for (BlockId A : S.blocks()) {
          int NA = S.region().nodeOfBlock(A);
          ASSERT_GE(NA, 0);
          for (BlockId B : S.blocks()) {
            int NB = S.region().nodeOfBlock(B);
            bool SliceDom = S.dom().dominates(static_cast<unsigned>(NA),
                                              static_cast<unsigned>(NB));
            if (SliceDom != WholeDom.dominates(A, B))
              ++DomMismatches;
          }
        }
        EXPECT_EQ(DomMismatches, 0u)
            << "seed " << Seed << " func " << F.name() << " loop " << LoopIdx;

        // -- CSPDG: the slice's control dependences must be exactly what a
        // fresh region-local computation produces (the CSPDG is region-
        // local by definition; the slice must snapshot it faithfully).
        ControlDeps Fresh = ControlDeps::compute(S.region());
        unsigned CDMismatches = 0;
        for (unsigned N = 0; N != S.region().numNodes(); ++N) {
          if (S.cspdg().deps(N) != Fresh.deps(N))
            ++CDMismatches;
          if (S.cspdg().cspdgSuccs(N) != Fresh.cspdgSuccs(N))
            ++CDMismatches;
          for (unsigned P = 0; P != S.region().numNodes(); ++P)
            if (S.cspdg().identicallyControlDependent(N, P) !=
                Fresh.identicallyControlDependent(N, P))
              ++CDMismatches;
        }
        EXPECT_EQ(CDMismatches, 0u)
            << "seed " << Seed << " func " << F.name() << " loop " << LoopIdx;
      }
    }
  }
  // The corpus must actually exercise the property (multi-loop programs).
  EXPECT_GE(RegionsChecked, 400u);
}

//===----------------------------------------------------------------------===
// Satellite 2: --region-jobs N output is bit-identical to sequential.
//===----------------------------------------------------------------------===

/// Schedules one source through the raw pipeline with \p RegionJobs and
/// returns the printed module.
std::string scheduledIR(const std::string &Source, unsigned RegionJobs) {
  std::unique_ptr<Module> M = compileMiniCOrDie(Source);
  PipelineOptions Opts; // full speculative pipeline, transactions on
  Opts.RegionJobs = RegionJobs;
  scheduleModule(*M, MachineDescription::rs6k(), Opts);
  EXPECT_TRUE(verifyModule(*M).empty());
  return moduleToString(*M);
}

TEST(RegionParallelDeterminismTest, EightJobsBitIdenticalOnCorpus) {
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    std::string Source = generateRandomMiniC(Seed);
    std::string Sequential = scheduledIR(Source, 1);
    std::string Parallel = scheduledIR(Source, 8);
    ASSERT_EQ(Parallel, Sequential) << "seed " << Seed;
    EXPECT_EQ(hashKey128(Parallel), hashKey128(Sequential));
  }
}

TEST(RegionParallelDeterminismTest, AllJobCountsAgree) {
  for (uint64_t Seed : {3u, 7u, 11u, 19u}) {
    std::string Source = generateRandomMiniC(Seed);
    std::string Sequential = scheduledIR(Source, 1);
    // 0 resolves to the hardware thread count.
    for (unsigned Jobs : {0u, 2u, 3u, 5u, 16u})
      EXPECT_EQ(scheduledIR(Source, Jobs), Sequential)
          << "seed " << Seed << " region-jobs " << Jobs;
  }
}

/// Batch helpers (mirroring compile_engine_test.cpp, which lives in the
/// same executable but its own namespace).
struct BatchModules {
  std::vector<std::unique_ptr<Module>> Modules;
  std::vector<BatchItem> Items;
};

BatchModules compileBatch(const std::vector<std::string> &Sources) {
  BatchModules B;
  for (size_t K = 0; K != Sources.size(); ++K) {
    B.Modules.push_back(compileMiniCOrDie(Sources[K]));
    B.Items.push_back(
        BatchItem{B.Modules.back().get(), "m" + std::to_string(K)});
  }
  return B;
}

std::string printedBatch(const BatchModules &B) {
  std::string All;
  for (const auto &M : B.Modules)
    All += moduleToString(*M);
  return All;
}

std::vector<std::string> corpusSources() {
  std::vector<std::string> Sources;
  for (uint64_t Seed : {2001u, 2002u, 2004u, 2006u, 2009u, 2013u})
    Sources.push_back(generateRandomMiniC(Seed));
  return Sources;
}

// The engine-level contract: engine workers x region jobs x cache state,
// all invisible in the output, bit for bit.
TEST(RegionParallelEngineTest, RegionJobsAndCacheInvisibleInBatchOutput) {
  MachineDescription MD = MachineDescription::rs6k();
  std::vector<std::string> Sources = corpusSources();

  struct Config {
    unsigned RegionJobs;
    bool Cache;
  };
  const Config Configs[] = {{1, false}, {8, false}, {1, true}, {8, true}};

  std::string ReferenceIR;
  for (const Config &C : Configs) {
    BatchModules B = compileBatch(Sources);
    PipelineOptions Opts;
    Opts.RegionJobs = C.RegionJobs;
    EngineOptions EOpts;
    EOpts.Jobs = 2;
    EOpts.UseCache = C.Cache;
    CompileEngine Engine(MD, Opts, EOpts);
    EngineReport Report = Engine.compileBatch(B.Items);
    EXPECT_EQ(Report.rollbacks(), 0u);

    std::string IR = printedBatch(B);
    if (ReferenceIR.empty()) {
      ReferenceIR = IR;
      continue;
    }
    EXPECT_EQ(hashKey128(IR), hashKey128(ReferenceIR));
    ASSERT_EQ(IR, ReferenceIR)
        << "region-jobs " << C.RegionJobs << " cache " << C.Cache;
  }
}

// RegionJobs is excluded from the cache's options fingerprint (the output
// is invariant), so a cache warmed at one value serves every other value.
TEST(RegionParallelEngineTest, CacheWarmedAtOneJobCountServesAnother) {
  MachineDescription MD = MachineDescription::rs6k();
  std::vector<std::string> Sources = corpusSources();
  ScheduleCache Shared;

  PipelineOptions SeqOpts;
  SeqOpts.RegionJobs = 1;
  EngineOptions EOpts;
  EOpts.Jobs = 1;
  EOpts.SharedCache = &Shared;

  BatchModules Cold = compileBatch(Sources);
  CompileEngine SeqEngine(MD, SeqOpts, EOpts);
  EngineReport First = SeqEngine.compileBatch(Cold.Items);
  EXPECT_EQ(First.CacheHits, 0u);

  PipelineOptions ParOpts;
  ParOpts.RegionJobs = 8;
  BatchModules Warm = compileBatch(Sources);
  CompileEngine ParEngine(MD, ParOpts, EOpts);
  EngineReport Second = ParEngine.compileBatch(Warm.Items);
  EXPECT_EQ(Second.CacheMisses, 0u);
  EXPECT_EQ(printedBatch(Warm), printedBatch(Cold));
}

TEST(RegionParallelEngineTest, OptionsFingerprintIgnoresRegionJobs) {
  PipelineOptions A, B;
  B.RegionJobs = 8;
  EXPECT_EQ(fingerprintOptions(A), fingerprintOptions(B));
  // ...but stays sensitive to options that do change the output.
  B.MaxSpecDepth = A.MaxSpecDepth + 1;
  EXPECT_NE(fingerprintOptions(A), fingerprintOptions(B));
}

//===----------------------------------------------------------------------===
// Per-region wave accounting (--stats plumbing)
//===----------------------------------------------------------------------===

TEST(RegionParallelStatsTest, WavesAndPerRegionTimesReported) {
  // Two independent inner loops: one leaf wave with two tasks, then the
  // top-level region in its own wave (across the two global passes).
  std::unique_ptr<Module> M = compileMiniCOrDie(R"(
    int main() {
      int a = 0; int b = 0; int i = 0; int j = 0;
      while (i < 10) { a = a + i; i = i + 1; }
      while (j < 10) { b = b + j; j = j + 1; }
      print(a); print(b);
      return a + b;
    }
  )");
  PipelineOptions Opts;
  Opts.RegionJobs = 4;
  PipelineStats Stats =
      scheduleModule(*M, MachineDescription::rs6k(), Opts);
  EXPECT_TRUE(verifyModule(*M).empty());

  EXPECT_GE(Stats.RegionWaves, 2u);
  // At minimum: both inner loops in the first pass and the top region in
  // the second.
  EXPECT_GE(Stats.RegionTimes.size(), 3u);
  bool SawTop = false, SawLoop = false;
  for (const RegionTime &RT : Stats.RegionTimes) {
    EXPECT_GE(RT.Seconds, 0.0);
    EXPECT_LT(RT.Wave, Stats.RegionWaves);
    if (RT.LoopIdx == -1)
      SawTop = true;
    else
      SawLoop = true;
  }
  EXPECT_TRUE(SawTop);
  EXPECT_TRUE(SawLoop);

  // A task's wave index is deterministic: re-running sequentially gives
  // the same wave structure.
  std::unique_ptr<Module> M2 = compileMiniCOrDie(R"(
    int main() {
      int a = 0; int b = 0; int i = 0; int j = 0;
      while (i < 10) { a = a + i; i = i + 1; }
      while (j < 10) { b = b + j; j = j + 1; }
      print(a); print(b);
      return a + b;
    }
  )");
  PipelineOptions SeqOpts;
  SeqOpts.RegionJobs = 1;
  PipelineStats SeqStats =
      scheduleModule(*M2, MachineDescription::rs6k(), SeqOpts);
  ASSERT_EQ(SeqStats.RegionTimes.size(), Stats.RegionTimes.size());
  EXPECT_EQ(SeqStats.RegionWaves, Stats.RegionWaves);
  for (size_t K = 0; K != Stats.RegionTimes.size(); ++K) {
    EXPECT_EQ(SeqStats.RegionTimes[K].LoopIdx, Stats.RegionTimes[K].LoopIdx);
    EXPECT_EQ(SeqStats.RegionTimes[K].Wave, Stats.RegionTimes[K].Wave);
  }
  EXPECT_EQ(moduleToString(*M2), moduleToString(*M));
}

} // namespace

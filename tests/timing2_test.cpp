//===- tests/timing2_test.cpp - Additional timing-model tests --------------===//
//
// Cross-function traces, utilization counters, software-pipelining effect
// of rotation, and simulator edge cases.
//
//===----------------------------------------------------------------------===//

#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "machine/Timing.h"
#include "sched/Pipeline.h"

#include <gtest/gtest.h>

using namespace gis;

TEST(Timing2Test, CrossFunctionTraceKeepsRegistersSeparate) {
  // Both functions use r1; the callee's r1 must not interlock with the
  // caller's (symbolic registers are per-function).
  auto M = compileMiniCOrDie(R"(
int callee(int p0) { return p0 + 1; }
int main() {
  int x = callee(4);
  return x;
}
)");
  Interpreter I(*M);
  I.enableTrace(true);
  ExecResult R = I.run(*M->findFunction("main"));
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.ReturnValue, 5);
  // The trace spans both functions.
  bool SawCallee = false, SawMain = false;
  for (const TraceEntry &E : I.trace()) {
    SawCallee |= E.Fn->name() == "callee";
    SawMain |= E.Fn->name() == "main";
  }
  EXPECT_TRUE(SawCallee);
  EXPECT_TRUE(SawMain);
  TimingSimulator Sim(MachineDescription::rs6k());
  TimingResult T = Sim.simulate(I.trace());
  EXPECT_GT(T.Cycles, 0u);
  EXPECT_EQ(T.Instructions, I.trace().size());
}

TEST(Timing2Test, UnitBusyCyclesAccount) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 1
  LI r2 = 2
  MUL r3 = r1, r2
  B B1
B1:
  RET r3
}
)");
  const Function &F = *M->functions()[0];
  Interpreter I(*M);
  I.enableTrace(true);
  I.run(F);
  MachineDescription MD = MachineDescription::rs6k();
  TimingSimulator Sim(MD);
  TimingResult T = Sim.simulate(I.trace());
  // Fixed unit: 1 + 1 + MUL latency; branch unit: B + RET = 2.
  unsigned FixedType = MD.unitTypeForOp(Opcode::LI);
  unsigned BranchType = MD.unitTypeForOp(Opcode::B);
  EXPECT_EQ(T.UnitBusyCycles[FixedType], 2 + MD.execTime(Opcode::MUL));
  EXPECT_EQ(T.UnitBusyCycles[BranchType], 2u);
}

TEST(Timing2Test, IPCNeverExceedsTotalUnits) {
  auto M = compileMiniCOrDie(R"(
int main() {
  int s = 0;
  int i;
  for (i = 0; i < 100; i = i + 1) s = s + i;
  return s;
}
)");
  Interpreter I(*M);
  I.enableTrace(true);
  I.run(*M->findFunction("main"));
  for (unsigned Width : {1u, 2u, 4u}) {
    MachineDescription MD = MachineDescription::superscalar(Width, 1, 1);
    TimingSimulator Sim(MD);
    TimingResult T = Sim.simulate(I.trace());
    EXPECT_LE(T.ipc(), double(MD.totalUnits()));
    EXPECT_GT(T.ipc(), 0.0);
  }
}

TEST(Timing2Test, EmptyTrace) {
  TimingSimulator Sim(MachineDescription::rs6k());
  TimingResult T = Sim.simulate(std::vector<TraceEntry>{});
  EXPECT_EQ(T.Cycles, 0u);
  EXPECT_EQ(T.Instructions, 0u);
  EXPECT_EQ(T.ipc(), 0.0);
}

TEST(Timing2Test, WiderMachineNeverSlower) {
  auto M = compileMiniCOrDie(R"(
int a[32];
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 32; i = i + 1) a[i] = i;
  for (i = 0; i < 32; i = i + 1) {
    if (a[i] % 3 == 0) s = s + a[i];
  }
  return s;
}
)");
  Interpreter I(*M);
  I.enableTrace(true);
  I.run(*M->findFunction("main"));
  uint64_t Prev = ~uint64_t(0);
  for (unsigned Width = 1; Width <= 4; ++Width) {
    TimingSimulator Sim(MachineDescription::superscalar(Width, 1, 2));
    uint64_t Cycles = Sim.simulate(I.trace()).Cycles;
    EXPECT_LE(Cycles, Prev) << "width " << Width;
    Prev = Cycles;
  }
}

TEST(Timing2Test, RotationEnablesCrossIterationOverlap) {
  // The partial software-pipelining effect of Section 6: with rotation the
  // next iteration's loads move into the previous iteration's body.
  const char *Source = R"(
int a[512];
int main(int n) {
  int i;
  int s = 0;
  for (i = 0; i < n; i = i + 1) s = s + a[i] * 3;
  return s;
}
)";
  auto Cycles = [&](bool Rotate) {
    auto M = compileMiniCOrDie(Source);
    PipelineOptions Opts;
    Opts.EnableRotate = Rotate;
    scheduleModule(*M, MachineDescription::rs6k(), Opts);
    Interpreter I(*M);
    I.enableTrace(true);
    Function *Main = M->findFunction("main");
    int64_t Base = M->globals()[0].Address;
    for (int K = 0; K != 512; ++K)
      I.storeWord(Base + 4 * K, K % 7);
    I.setReg(Main->params()[0], 500);
    ExecResult R = I.run(*Main);
    EXPECT_FALSE(R.Trapped);
    TimingSimulator Sim(MachineDescription::rs6k());
    return Sim.simulate(I.trace()).Cycles;
  };
  // Rotation must never hurt, and on this load-bound loop it should help.
  EXPECT_LE(Cycles(true), Cycles(false));
}

//===- tests/serve_test.cpp - Compile-daemon tests -------------------------===//
//
// The fault-tolerant serving tier (persist/Server.h, persist/Client.h):
// compiles over the socket match local compiles bit for bit, the bounded
// admission queue sheds instead of backlogging, queued requests past
// their deadline get TIMEOUT instead of a late answer, a drain answers
// every admitted request, and the client's backoff handles both shed and
// connect-refused without bothering the caller.
//
//===----------------------------------------------------------------------===//

#include "engine/CompileEngine.h"
#include "frontend/CodeGen.h"
#include "ir/Printer.h"
#include "persist/Client.h"
#include "persist/Protocol.h"
#include "persist/Server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace gis;
using namespace gis::persist;

namespace {

struct TempDir {
  std::string Path;
  explicit TempDir(const char *Tag) {
    std::string Template = std::string(Tag) + "-XXXXXX";
    std::vector<char> Buf(Template.begin(), Template.end());
    Buf.push_back('\0');
    const char *P = ::mkdtemp(Buf.data());
    EXPECT_NE(P, nullptr);
    Path = P ? P : Template;
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
};

const char *kSource =
    "int main() { int i = 0; int s = 0; while (i < 5) { s = s + 2 * i; "
    "i = i + 1; } print(s); return s; }";

CompileRequest makeRequest(const std::string &Source,
                           unsigned DeadlineMs = 10000) {
  CompileRequest Req;
  Req.IsAsm = false;
  Req.DeadlineMs = DeadlineMs;
  Req.Name = "test.c";
  Req.Source = Source;
  return Req;
}

ClientOptions clientFor(const CompileServer &Server, unsigned Retries = 2) {
  ClientOptions CO;
  CO.SocketPath = Server.socketPath();
  CO.Retries = Retries;
  CO.BackoffBaseMs = 5;
  CO.BackoffMaxMs = 100;
  return CO;
}

/// What a local, daemon-free compile of \p Source produces.
std::string localSchedule(const std::string &Source) {
  auto M = compileMiniCOrDie(Source);
  CompileEngine Engine(MachineDescription::rs6k(), PipelineOptions{});
  Engine.compile(*M);
  return moduleToString(*M);
}

//===----------------------------------------------------------------------===
// Basic serving
//===----------------------------------------------------------------------===

TEST(ServeTest, CompileOverSocketMatchesLocalCompile) {
  TempDir D("gis-serve");
  ServerOptions SO;
  SO.SocketPath = D.Path + "/s";
  CompileServer Server(MachineDescription::rs6k(), PipelineOptions{}, SO);
  ASSERT_TRUE(Server.start().isOk());

  CompileResponse R =
      compileOverSocket(clientFor(Server), makeRequest(kSource));
  ASSERT_EQ(R.Kind, ResponseKind::Ok);
  EXPECT_EQ(R.Text, localSchedule(kSource));
  EXPECT_EQ(R.Misses, 1u);
  EXPECT_EQ(R.Attempts, 1u);

  // Same source again: a warm memory hit in the daemon.
  CompileResponse R2 =
      compileOverSocket(clientFor(Server), makeRequest(kSource));
  ASSERT_EQ(R2.Kind, ResponseKind::Ok);
  EXPECT_EQ(R2.Text, R.Text);
  EXPECT_EQ(R2.MemHits, 1u);

  Server.drainAndJoin();
  ServerStats S = Server.stats();
  EXPECT_EQ(S.Accepted, 2u);
  EXPECT_EQ(S.Completed, 2u);
  EXPECT_EQ(S.Shed, 0u);
  EXPECT_EQ(Server.counters().get(obs::ServeAccepted), 2u);
  EXPECT_FALSE(std::filesystem::exists(SO.SocketPath)); // unlinked
}

TEST(ServeTest, AsmInputAndFrontendErrors) {
  TempDir D("gis-serve");
  ServerOptions SO;
  SO.SocketPath = D.Path + "/s";
  CompileServer Server(MachineDescription::rs6k(), PipelineOptions{}, SO);
  ASSERT_TRUE(Server.start().isOk());

  // Round-trip: schedule C locally, ship the printed IR as asm input.
  auto M = compileMiniCOrDie(kSource);
  CompileRequest Req = makeRequest(moduleToString(*M));
  Req.IsAsm = true;
  CompileResponse R = compileOverSocket(clientFor(Server), Req);
  ASSERT_EQ(R.Kind, ResponseKind::Ok);

  CompileResponse Bad = compileOverSocket(
      clientFor(Server), makeRequest("int main( { syntax error"));
  ASSERT_EQ(Bad.Kind, ResponseKind::Error);
  EXPECT_NE(Bad.Text.find("frontend"), std::string::npos);
  EXPECT_EQ(Server.stats().Errors, 1u);
}

TEST(ServeTest, SharedDiskTierSurvivesDaemonRestart) {
  TempDir D("gis-serve");
  ServerOptions SO;
  SO.SocketPath = D.Path + "/s";
  SO.CacheDir = D.Path + "/cache";
  std::string First;
  {
    CompileServer Server(MachineDescription::rs6k(), PipelineOptions{},
                         SO);
    ASSERT_TRUE(Server.start().isOk());
    CompileResponse R =
        compileOverSocket(clientFor(Server), makeRequest(kSource));
    ASSERT_EQ(R.Kind, ResponseKind::Ok);
    First = R.Text;
    Server.drainAndJoin();
  }
  // New daemon, same directory: the schedule comes back from disk.
  {
    CompileServer Server(MachineDescription::rs6k(), PipelineOptions{},
                         SO);
    ASSERT_TRUE(Server.start().isOk());
    CompileResponse R =
        compileOverSocket(clientFor(Server), makeRequest(kSource));
    ASSERT_EQ(R.Kind, ResponseKind::Ok);
    EXPECT_EQ(R.DiskHits, 1u);
    EXPECT_EQ(R.Text, First);
    Server.drainAndJoin();
  }
}

//===----------------------------------------------------------------------===
// Overload behaviour
//===----------------------------------------------------------------------===

TEST(ServeTest, FullQueueShedsInsteadOfBacklogging) {
  TempDir D("gis-serve");
  ServerOptions SO;
  SO.SocketPath = D.Path + "/s";
  SO.Workers = 1;
  SO.QueueDepth = 1;
  SO.TestHoldMs = 250; // pin the single worker so the queue fills
  CompileServer Server(MachineDescription::rs6k(), PipelineOptions{}, SO);
  ASSERT_TRUE(Server.start().isOk());

  std::atomic<unsigned> Ok{0}, Shed{0};
  std::vector<std::thread> Clients;
  for (unsigned K = 0; K != 6; ++K)
    Clients.emplace_back([&] {
      // No retries: a shed must surface, not be retried away.
      CompileResponse R = compileOverSocket(clientFor(Server, 0),
                                            makeRequest(kSource));
      if (R.Kind == ResponseKind::Ok)
        ++Ok;
      else if (R.Kind == ResponseKind::Shed)
        ++Shed;
    });
  for (std::thread &T : Clients)
    T.join();
  Server.drainAndJoin();

  EXPECT_GT(Shed.load(), 0u);
  EXPECT_GT(Ok.load(), 0u);
  EXPECT_EQ(Ok.load() + Shed.load(), 6u);
  ServerStats S = Server.stats();
  EXPECT_EQ(S.Shed, Shed.load());
  EXPECT_EQ(S.Completed, Ok.load());
  EXPECT_EQ(Server.counters().get(obs::ServeShed), S.Shed);
  // Sheds respond instantly; nothing was dropped without an answer.
  EXPECT_EQ(S.Accepted, Ok.load());
}

TEST(ServeTest, ClientRetriesThroughTransientShed) {
  TempDir D("gis-serve");
  ServerOptions SO;
  SO.SocketPath = D.Path + "/s";
  SO.Workers = 1;
  SO.QueueDepth = 1;
  SO.TestHoldMs = 60;
  SO.ShedRetryMs = 10;
  CompileServer Server(MachineDescription::rs6k(), PipelineOptions{}, SO);
  ASSERT_TRUE(Server.start().isOk());

  // Enough retry budget that every client eventually lands.
  std::atomic<unsigned> Ok{0};
  std::mutex FailMu;
  std::vector<std::thread> Clients;
  for (unsigned K = 0; K != 4; ++K)
    Clients.emplace_back([&] {
      CompileResponse R = compileOverSocket(clientFor(Server, 30),
                                            makeRequest(kSource));
      if (R.Kind == ResponseKind::Ok) {
        ++Ok;
      } else {
        std::lock_guard<std::mutex> L(FailMu);
        ADD_FAILURE() << "client got kind=" << static_cast<int>(R.Kind)
                      << " after " << R.Attempts
                      << " attempt(s): " << R.Text;
      }
    });
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(Ok.load(), 4u);
}

TEST(ServeTest, QueuedPastDeadlineGetsTimeout) {
  TempDir D("gis-serve");
  ServerOptions SO;
  SO.SocketPath = D.Path + "/s";
  SO.Workers = 1;
  SO.QueueDepth = 8;
  SO.TestHoldMs = 300; // first request occupies the worker this long
  CompileServer Server(MachineDescription::rs6k(), PipelineOptions{}, SO);
  ASSERT_TRUE(Server.start().isOk());

  std::thread Slow([&] {
    compileOverSocket(clientFor(Server, 0), makeRequest(kSource, 10000));
  });
  // Give the first request time to reach the worker, then queue one whose
  // deadline will expire while it waits.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  CompileResponse R =
      compileOverSocket(clientFor(Server, 0), makeRequest(kSource, 50));
  Slow.join();
  Server.drainAndJoin();

  EXPECT_EQ(R.Kind, ResponseKind::Timeout);
  ServerStats S = Server.stats();
  EXPECT_EQ(S.TimedOut, 1u);
  EXPECT_EQ(Server.counters().get(obs::ServeTimeouts), 1u);
}

//===----------------------------------------------------------------------===
// Shutdown and transport failure
//===----------------------------------------------------------------------===

TEST(ServeTest, DrainAnswersEveryAdmittedRequest) {
  TempDir D("gis-serve");
  ServerOptions SO;
  SO.SocketPath = D.Path + "/s";
  SO.Workers = 2;
  SO.QueueDepth = 16;
  SO.TestHoldMs = 80;
  CompileServer Server(MachineDescription::rs6k(), PipelineOptions{}, SO);
  ASSERT_TRUE(Server.start().isOk());

  std::atomic<unsigned> Ok{0};
  std::vector<std::thread> Clients;
  for (unsigned K = 0; K != 5; ++K)
    Clients.emplace_back([&] {
      CompileResponse R = compileOverSocket(clientFor(Server, 0),
                                            makeRequest(kSource));
      if (R.Kind == ResponseKind::Ok)
        ++Ok;
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  // SIGTERM semantics: stop admitting, then finish what was admitted.
  Server.requestStop();
  Server.drainAndJoin();
  for (std::thread &T : Clients)
    T.join();

  ServerStats S = Server.stats();
  EXPECT_EQ(S.Completed, S.Accepted); // every admitted request answered
  EXPECT_EQ(Ok.load(), S.Accepted);
  EXPECT_FALSE(Server.running());
}

TEST(ServeTest, ClientBacksOffOnConnectFailureThenGivesUp) {
  ClientOptions CO;
  CO.SocketPath = "/nonexistent-gis-daemon.sock";
  CO.Retries = 2;
  CO.BackoffBaseMs = 1;
  CO.BackoffMaxMs = 4;
  CompileResponse R = compileOverSocket(CO, makeRequest(kSource));
  EXPECT_EQ(R.Kind, ResponseKind::ConnectFailed);
  EXPECT_EQ(R.Attempts, 0u); // never reached a daemon
}

TEST(ServeTest, PingStatsAndMalformedRequests) {
  TempDir D("gis-serve");
  ServerOptions SO;
  SO.SocketPath = D.Path + "/s";
  CompileServer Server(MachineDescription::rs6k(), PipelineOptions{}, SO);
  ASSERT_TRUE(Server.start().isOk());

  EXPECT_TRUE(pingServer(SO.SocketPath).isOk());
  EXPECT_FALSE(pingServer(D.Path + "/nope").isOk());

  compileOverSocket(clientFor(Server), makeRequest(kSource));
  std::string Json;
  ASSERT_TRUE(fetchServerStats(SO.SocketPath, Json).isOk());
  EXPECT_NE(Json.find("\"serve\""), std::string::npos);
  // The STATS request itself is an admission, so don't pin the count.
  EXPECT_NE(Json.find("\"accepted\": "), std::string::npos);
  EXPECT_NE(Json.find("serve.accepted"), std::string::npos);

  // A raw bogus verb gets a structured ERR, not a hang or a crash.
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SO.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ASSERT_EQ(
      ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)), 0);
  ASSERT_TRUE(writeAll(Fd, "BOGUS request\n"));
  std::string Line;
  ASSERT_TRUE(readLine(Fd, Line));
  EXPECT_EQ(Line.rfind("ERR ", 0), 0u);
  ::close(Fd);
  EXPECT_GE(Server.stats().Errors, 1u);
}

} // namespace

//===- tests/schedverifier_test.cpp - Semantic schedule verifier tests -----===//
//
// The semantic verifier (sched/ScheduleVerifier.h) re-checks the paper's
// motion legality rules on before/after function pairs.  These tests build
// small diamonds by hand, apply legal and illegal motions directly to the
// block instruction lists, and check that exactly the illegal ones are
// flagged: an illegal speculative motion that kills a live-on-exit
// register (Section 5.3), and a reorder that breaks a dependence edge.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "analysis/Region.h"
#include "ir/Parser.h"
#include "sched/ScheduleVerifier.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

/// A diamond whose entry BL0 and join BL2 are equivalent (BL0 dominates
/// BL2, BL2 postdominates BL0); BL1 is conditional.
const char *Diamond = R"(
func diamond {
BL0:
  LI r1 = 1
  C cr0 = r1, r1
  BF BL2, cr0, gt
BL1:
  LI r2 = 7
  AI r3 = r2, 1
BL2:
  LI r4 = 9
  AI r5 = r4, 1
  CALL print(r5)
  RET
}
)";

/// Same shape, but the conditional block redefines a register the join
/// still reads: moving that redefinition up kills r1 on the bypassing
/// BL0 -> BL2 path.
const char *Killer = R"(
func killer {
BL0:
  LI r1 = 1
  C cr0 = r1, r1
  BF BL2, cr0, gt
BL1:
  LI r1 = 99
BL2:
  CALL print(r1)
  RET
}
)";

const char *Straight = R"(
func straight {
BL0:
  LI r1 = 1
  AI r2 = r1, 2
  CALL print(r2)
  RET
}
)";

BlockId blockByLabel(const Function &F, const std::string &Label) {
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    if (F.block(B).label() == Label)
      return B;
  ADD_FAILURE() << "no block " << Label;
  return InvalidId;
}

/// Moves the instruction at \p FromIdx of block \p From to position
/// \p ToIdx of block \p To -- the raw effect of one inter-block motion.
void moveInstr(Function &F, BlockId From, unsigned FromIdx, BlockId To,
               unsigned ToIdx) {
  std::vector<InstrId> &Src = F.block(From).instrs();
  ASSERT_LT(FromIdx, Src.size());
  InstrId I = Src[FromIdx];
  Src.erase(Src.begin() + FromIdx);
  std::vector<InstrId> &Dst = F.block(To).instrs();
  ASSERT_LE(ToIdx, Dst.size());
  Dst.insert(Dst.begin() + ToIdx, I);
}

/// Parses \p Text and builds the top-level scheduling region.
struct RegionFixture {
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  SchedRegion R;

  explicit RegionFixture(const char *Text) : M(parseModuleOrDie(Text)) {
    F = M->functions()[0].get();
    F->recomputeCFG();
    F->renumberOriginalOrder();
    LoopInfo LI = LoopInfo::compute(*F);
    R = SchedRegion::build(*F, LI, -1);
  }
};

std::string joined(const std::vector<std::string> &Problems) {
  std::string Out;
  for (const std::string &P : Problems)
    Out += P + "\n";
  return Out;
}

bool anyContains(const std::vector<std::string> &Problems,
                 const std::string &Needle) {
  for (const std::string &P : Problems)
    if (P.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(ScheduleVerifierTest, IdentityScheduleIsLegal) {
  RegionFixture Fix(Diamond);
  Function After = *Fix.F;
  EXPECT_TRUE(isScheduleLegal(*Fix.F, After, Fix.R,
                              MachineDescription::rs6k()));
}

TEST(ScheduleVerifierTest, LegalUsefulMotionPasses) {
  RegionFixture Fix(Diamond);
  Function After = *Fix.F;
  // BL2 is equivalent to BL0: moving "LI r4 = 9" from the join into the
  // entry (above the branch) is a useful motion, always legal.
  moveInstr(After, blockByLabel(After, "BL2"), 0, blockByLabel(After, "BL0"),
            2);
  std::vector<std::string> Problems = verifyRegionSchedule(
      *Fix.F, After, Fix.R, MachineDescription::rs6k());
  EXPECT_TRUE(Problems.empty()) << joined(Problems);
}

TEST(ScheduleVerifierTest, LegalSpeculativeMotionPasses) {
  RegionFixture Fix(Diamond);
  Function After = *Fix.F;
  // "LI r2 = 7" moves from the conditional BL1 into BL0: speculative, but
  // r2 is dead on the bypassing path, so the Section 5.3 rule holds.
  moveInstr(After, blockByLabel(After, "BL1"), 0, blockByLabel(After, "BL0"),
            2);
  std::vector<std::string> Problems = verifyRegionSchedule(
      *Fix.F, After, Fix.R, MachineDescription::rs6k());
  EXPECT_TRUE(Problems.empty()) << joined(Problems);
}

TEST(ScheduleVerifierTest, SpeculativeMotionKillingLiveOnExitIsFlagged) {
  RegionFixture Fix(Killer);
  Function After = *Fix.F;
  // "LI r1 = 99" moves from the conditional BL1 into BL0.  BL2 reads r1 on
  // the path that bypasses BL1, so the motion kills a live-on-exit value
  // (the scheduler would have to rename r1 to make this legal).
  moveInstr(After, blockByLabel(After, "BL1"), 0, blockByLabel(After, "BL0"),
            2);
  std::vector<std::string> Problems = verifyRegionSchedule(
      *Fix.F, After, Fix.R, MachineDescription::rs6k());
  ASSERT_FALSE(Problems.empty());
  EXPECT_TRUE(anyContains(Problems, "kills")) << joined(Problems);
}

TEST(ScheduleVerifierTest, DependenceReorderIsFlagged) {
  RegionFixture Fix(Straight);
  Function After = *Fix.F;
  // Swap the producer "LI r1 = 1" with its consumer "AI r2 = r1, 2": the
  // flow dependence now runs backward.
  std::vector<InstrId> &Instrs =
      After.block(blockByLabel(After, "BL0")).instrs();
  std::swap(Instrs[0], Instrs[1]);
  std::vector<std::string> Problems = verifyRegionSchedule(
      *Fix.F, After, Fix.R, MachineDescription::rs6k());
  ASSERT_FALSE(Problems.empty());
  EXPECT_TRUE(anyContains(Problems, "dependence")) << joined(Problems);
}

TEST(ScheduleVerifierTest, DroppedInstructionBreaksConservation) {
  RegionFixture Fix(Diamond);
  Function After = *Fix.F;
  std::vector<InstrId> &Instrs =
      After.block(blockByLabel(After, "BL1")).instrs();
  Instrs.erase(Instrs.begin());
  std::vector<std::string> Problems = verifyRegionSchedule(
      *Fix.F, After, Fix.R, MachineDescription::rs6k());
  ASSERT_FALSE(Problems.empty());
  EXPECT_TRUE(anyContains(Problems, "conserved")) << joined(Problems);
}

TEST(ScheduleVerifierTest, MovedTerminatorIsFlagged) {
  RegionFixture Fix(Diamond);
  Function After = *Fix.F;
  // Branches are pinned: hoisting BL1's whole contents is representable,
  // but moving the BF terminator of BL0 down into BL2 never is.
  moveInstr(After, blockByLabel(After, "BL0"), 2, blockByLabel(After, "BL2"),
            0);
  std::vector<std::string> Problems = verifyRegionSchedule(
      *Fix.F, After, Fix.R, MachineDescription::rs6k());
  EXPECT_FALSE(Problems.empty());
}

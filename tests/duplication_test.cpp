//===- tests/duplication_test.cpp - Scheduling-with-duplication tests -------===//
//
// The Definition 6 future-work extension: join replication.  Moving an
// instruction from a join block into every predecessor is exactly the
// motion the paper's prototype forbade ("no duplication of code is
// allowed"); this pass implements the restricted, provably safe form.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "analysis/Region.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "machine/Timing.h"
#include "sched/Duplication.h"
#include "sched/Pipeline.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

BlockId blockByLabel(const Function &F, const std::string &Label) {
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    if (F.block(B).label() == Label)
      return B;
  ADD_FAILURE() << "no block " << Label;
  return InvalidId;
}

DuplicationStats runOnTopRegion(Function &F,
                                DuplicationOptions Opts = {}) {
  F.recomputeCFG();
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  return duplicateIntoPreds(F, R, Opts);
}

} // namespace

TEST(DuplicationTest, ReplicatesJoinHeadIntoBothArms) {
  auto M = parseModuleOrDie(R"(
func f {
ENTRY:
  C cr0 = r1, r2
  BF ELSE_, cr0, gt
THEN_:
  LI r3 = 1
  B JOIN
ELSE_:
  LI r3 = 2
JOIN:
  AI r4 = r9, 5
  A r5 = r3, r4
  RET r5
}
)");
  Function &F = *M->functions()[0];
  DuplicationStats Stats = runOnTopRegion(F);
  // "AI r4 = r9, 5" is independent of the arms and dead on the off paths:
  // it is replicated into THEN_ and ELSE_.
  EXPECT_EQ(Stats.DuplicatedInstrs, 1u);
  EXPECT_EQ(Stats.CopiesInserted, 2u);
  EXPECT_TRUE(verifyFunction(F).empty());
  // The join no longer starts with the AI.
  BlockId Join = blockByLabel(F, "JOIN");
  EXPECT_EQ(F.instr(F.block(Join).instrs()[0]).opcode(), Opcode::A);
  // Each arm got one copy, placed before its terminator.
  BlockId Then = blockByLabel(F, "THEN_");
  ASSERT_EQ(F.block(Then).size(), 3u);
  EXPECT_EQ(F.instr(F.block(Then).instrs()[1]).opcode(), Opcode::AI);
  EXPECT_EQ(F.instr(F.block(Then).instrs()[2]).opcode(), Opcode::B);

  // Semantics on both paths.
  for (int64_t R1 : {1, 9}) {
    Interpreter I(*M);
    I.setReg(Reg::gpr(1), R1);
    I.setReg(Reg::gpr(2), 5);
    I.setReg(Reg::gpr(9), 10);
    ExecResult R = I.run(F);
    ASSERT_FALSE(R.Trapped);
    EXPECT_EQ(R.ReturnValue, (R1 > 5 ? 1 : 2) + 15);
  }
}

TEST(DuplicationTest, RefusesWhenDependentOnArms) {
  auto M = parseModuleOrDie(R"(
func f {
ENTRY:
  C cr0 = r1, r2
  BF ELSE_, cr0, gt
THEN_:
  LI r3 = 1
  B JOIN
ELSE_:
  LI r3 = 2
JOIN:
  AI r4 = r3, 5
  RET r4
}
)");
  Function &F = *M->functions()[0];
  // "AI r4 = r3, 5" depends on r3, which each arm defines for itself.
  // Replicating would be legal (each copy reads its own arm's r3), but
  // the pass is conservative: a dependence predecessor must precede the
  // insertion point on *every* predecessor, and the ELSE_ definition does
  // not precede THEN_.  Refused -- a future path-sensitive refinement.
  DuplicationStats Stats = runOnTopRegion(F);
  EXPECT_EQ(Stats.DuplicatedInstrs, 0u);
  for (int64_t R1 : {1, 9}) {
    Interpreter I(*M);
    I.setReg(Reg::gpr(1), R1);
    I.setReg(Reg::gpr(2), 5);
    ExecResult R = I.run(F);
    ASSERT_FALSE(R.Trapped);
    EXPECT_EQ(R.ReturnValue, (R1 > 5 ? 1 : 2) + 5);
  }
}

TEST(DuplicationTest, RefusesClobberingLiveOffPathValue) {
  // THEN_ has a second successor (SKIP) where r4 is live: replicating
  // "LI r4 = 7" into THEN_ would clobber it there.
  auto M = parseModuleOrDie(R"(
func f {
ENTRY:
  LI r4 = 100
  C cr0 = r1, r2
  BF ELSE_, cr0, gt
THEN_:
  C cr1 = r1, r9
  BT SKIP, cr1, lt
JOIN:
  LI r4 = 7
  CALL print(r4)
  RET
ELSE_:
  LI r3 = 2
  B JOIN
SKIP:
  CALL print(r4)
  RET
}
)");
  Function &F = *M->functions()[0];
  runOnTopRegion(F);
  // The LI r4 = 7 must still be in JOIN (not replicated into THEN_,
  // where the SKIP path needs the old r4).
  BlockId Join = blockByLabel(F, "JOIN");
  bool Found = false;
  for (InstrId I : F.block(Join).instrs())
    Found |= F.instr(I).opcode() == Opcode::LI && F.instr(I).imm() == 7;
  EXPECT_TRUE(Found);

  // And behaviour is intact on the SKIP path.
  Interpreter I(*M);
  I.setReg(Reg::gpr(1), 9);
  I.setReg(Reg::gpr(2), 5);
  I.setReg(Reg::gpr(9), 100);
  ExecResult R = I.run(F);
  ASSERT_FALSE(R.Trapped);
  ASSERT_EQ(R.Printed.size(), 1u);
  EXPECT_EQ(R.Printed[0], 100);
}

TEST(DuplicationTest, NeverReplicatesStores) {
  auto M = parseModuleOrDie(R"(
func f {
ENTRY:
  C cr0 = r1, r2
  BF ELSE_, cr0, gt
THEN_:
  C cr1 = r1, r9
  BT OUT, cr1, lt
JOIN:
  ST mem[r8 + 0] = r1
  RET
ELSE_:
  NOP
  B JOIN
OUT:
  RET
}
)");
  Function &F = *M->functions()[0];
  DuplicationStats Stats = runOnTopRegion(F);
  // THEN_ has an off path (OUT): the store must not be replicated.
  BlockId Join = blockByLabel(F, "JOIN");
  EXPECT_EQ(F.instr(F.block(Join).instrs()[0]).opcode(), Opcode::ST);
  EXPECT_EQ(Stats.DuplicatedInstrs, 0u);
}

TEST(DuplicationTest, RefusesClobberingBranchCondition) {
  // The predecessor's terminator reads cr0; a replicated compare writing
  // cr0 would corrupt the branch.
  auto M = parseModuleOrDie(R"(
func f {
ENTRY:
  C cr0 = r1, r2
  BF ELSE_, cr0, gt
THEN_:
  LI r3 = 1
  B JOIN
ELSE_:
  LI r3 = 2
JOIN:
  C cr0 = r3, r9
  BT TAKEN, cr0, lt
FALL:
  RET r3
TAKEN:
  RET r9
}
)");
  Function &F = *M->functions()[0];
  // ENTRY is a *predecessor* of ELSE_? No -- the joins considered are
  // JOIN (preds THEN_, ELSE_).  Replicating "C cr0" into THEN_ is fine
  // (B terminator reads nothing), and into ELSE_ is fine (fall-through).
  // It IS legal here; the guarded case is a pred whose conditional
  // branch reads cr0:
  runOnTopRegion(F);
  EXPECT_TRUE(verifyFunction(F).empty());
  for (int64_t R1 : {1, 9}) {
    Interpreter I(*M);
    I.setReg(Reg::gpr(1), R1);
    I.setReg(Reg::gpr(2), 5);
    I.setReg(Reg::gpr(9), 0);
    ExecResult R = I.run(F);
    ASSERT_FALSE(R.Trapped);
    EXPECT_EQ(R.ReturnValue, (R1 > 5 ? 1 : 2) < 0 ? 0 : (R1 > 5 ? 1 : 2));
  }
}

TEST(DuplicationTest, CapBoundsCodeGrowth) {
  auto M = parseModuleOrDie(R"(
func f {
ENTRY:
  C cr0 = r1, r2
  BF ELSE_, cr0, gt
THEN_:
  LI r3 = 1
  B JOIN
ELSE_:
  LI r3 = 2
JOIN:
  AI r4 = r9, 1
  AI r5 = r9, 2
  AI r6 = r9, 3
  A r7 = r4, r5
  A r7 = r7, r6
  A r7 = r7, r3
  RET r7
}
)");
  Function &F = *M->functions()[0];
  DuplicationOptions Opts;
  Opts.MaxPerRegion = 2;
  DuplicationStats Stats = runOnTopRegion(F, Opts);
  EXPECT_LE(Stats.DuplicatedInstrs, 2u);
}

TEST(DuplicationTest, PipelineExtensionPreservesMinmax) {
  // The full pipeline with duplication on, against the paper's example.
  auto Run = [](bool Duplication) {
    auto M = parseModuleOrDie(R"(
func minmax {
BL0:
  LI r31 = 1000
  L r28 = mem[r31 + 0]
  LR r30 = r28
  LI r29 = 1
BL1:
  L r12 = mem[r31 + 4]
  LU r0, r31 = mem[r31 + 8]
  C cr7 = r12, r0
  BF BL6, cr7, gt
BL2:
  C cr6 = r12, r30
  BF BL4, cr6, gt
BL3:
  LR r30 = r12
BL4:
  C cr7 = r0, r28
  BF BL10, cr7, lt
BL5:
  LR r28 = r0
  B BL10
BL6:
  C cr6 = r0, r30
  BF BL8, cr6, gt
BL7:
  LR r30 = r0
BL8:
  C cr7 = r12, r28
  BF BL10, cr7, lt
BL9:
  LR r28 = r12
BL10:
  AI r29 = r29, 2
  C cr4 = r29, r27
  BT BL1, cr4, lt
BL11:
  CALL print(r28)
  CALL print(r30)
  RET
}
)");
    Function &F = *M->functions()[0];
    PipelineOptions Opts;
    Opts.AllowDuplication = Duplication;
    schedulePipeline(F, MachineDescription::rs6k(), Opts);
    EXPECT_TRUE(verifyFunction(F).empty());
    Interpreter I(*M);
    for (int K = 0; K != 66; ++K)
      I.storeWord(1000 + 4 * K, (K % 2 == 1) ? 100 + K : -100 - K);
    I.setReg(Reg::gpr(27), 64);
    ExecResult R = I.run(F);
    EXPECT_FALSE(R.Trapped) << R.TrapReason;
    return R.Printed;
  };
  EXPECT_EQ(Run(false), Run(true));
}

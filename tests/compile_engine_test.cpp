//===- tests/compile_engine_test.cpp - Batch-compilation engine tests ------===//
//
// The parallel batch-compilation engine (engine/CompileEngine.h) and its
// parts: the work-stealing thread pool, stable content hashing, the
// content-addressed schedule cache, and the engine's headline contract --
// a batch compiled with N workers, cache on or off, is bit-identical to
// the same batch compiled with one worker, down to simulated cycle counts.
//
//===----------------------------------------------------------------------===//

#include "engine/CompileEngine.h"
#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Checkpoint.h"
#include "ir/Printer.h"
#include "machine/Timing.h"
#include "support/FaultInjection.h"
#include "support/Hashing.h"
#include "support/ThreadPool.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <iterator>

using namespace gis;

namespace {

//===----------------------------------------------------------------------===
// ThreadPool
//===----------------------------------------------------------------------===

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  std::atomic<unsigned> Ran{0};
  for (unsigned K = 0; K != 200; ++K)
    Pool.submit([&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
  Pool.waitIdle();
  EXPECT_EQ(Ran.load(), 200u);
}

TEST(ThreadPoolTest, WaitIdleCoversNestedSubmissions) {
  ThreadPool Pool(3);
  std::atomic<unsigned> Ran{0};
  for (unsigned K = 0; K != 8; ++K)
    Pool.submit([&Pool, &Ran] {
      // A task fanning out further work, as a region-parallel scheduler
      // would; waitIdle must cover the children too.
      for (unsigned J = 0; J != 4; ++J)
        Pool.submit([&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
      Ran.fetch_add(1, std::memory_order_relaxed);
    });
  Pool.waitIdle();
  EXPECT_EQ(Ran.load(), 8u * 5);
}

TEST(ThreadPoolTest, ReusableAfterIdle) {
  ThreadPool Pool(2);
  std::atomic<unsigned> Ran{0};
  Pool.submit([&Ran] { ++Ran; });
  Pool.waitIdle();
  Pool.submit([&Ran] { ++Ran; });
  Pool.waitIdle();
  EXPECT_EQ(Ran.load(), 2u);
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

//===----------------------------------------------------------------------===
// Hashing
//===----------------------------------------------------------------------===

TEST(HashingTest, StableAndContentSensitive) {
  EXPECT_EQ(hashKey128("schedule me"), hashKey128("schedule me"));
  EXPECT_NE(hashKey128("schedule me"), hashKey128("schedule mf"));
  EXPECT_NE(hashKey128(""), hashKey128(std::string_view("\0", 1)));

  HashBuilder A, B;
  A.addString("fn").addU64(7).addBool(true);
  B.addString("fn").addU64(7).addBool(true);
  EXPECT_EQ(A.hash(), B.hash());
  B.addBool(false);
  EXPECT_NE(A.hash(), B.hash());
}

TEST(HashingTest, LengthPrefixPreventsStringAliasing) {
  HashBuilder A, B;
  A.addString("ab").addString("c");
  B.addString("a").addString("bc");
  EXPECT_NE(A.hash(), B.hash());
}

//===----------------------------------------------------------------------===
// Fingerprints and cache keys
//===----------------------------------------------------------------------===

TEST(ScheduleCacheTest, MachineFingerprintSeparatesConfigs) {
  uint64_t RS = fingerprintMachine(MachineDescription::rs6k());
  EXPECT_EQ(RS, fingerprintMachine(MachineDescription::rs6k()));
  EXPECT_NE(RS, fingerprintMachine(MachineDescription::superscalar(4, 1, 2)));
  EXPECT_NE(fingerprintMachine(MachineDescription::superscalar(2, 1, 1)),
            fingerprintMachine(MachineDescription::superscalar(2, 1, 2)));
}

TEST(ScheduleCacheTest, OptionsFingerprintSeparatesConfigs) {
  PipelineOptions A;
  uint64_t FA = fingerprintOptions(A);
  EXPECT_EQ(FA, fingerprintOptions(A));

  PipelineOptions B = A;
  B.Level = SchedLevel::Useful;
  EXPECT_NE(FA, fingerprintOptions(B));

  PipelineOptions C = A;
  C.MaxSpecDepth = 3;
  EXPECT_NE(FA, fingerprintOptions(C));
}

TEST(ScheduleCacheTest, KeyTracksFunctionContent) {
  auto M = compileMiniCOrDie("int main() { int a = 1; print(a); return a; }");
  Function &F = *M->functions()[0];
  uint64_t MFp = fingerprintMachine(MachineDescription::rs6k());
  uint64_t OFp = fingerprintOptions(PipelineOptions{});
  Key128 K1 = scheduleCacheKey(F, MFp, OFp);
  EXPECT_EQ(K1, scheduleCacheKey(F, MFp, OFp));
  EXPECT_NE(K1, scheduleCacheKey(F, MFp + 1, OFp));
  EXPECT_NE(K1, scheduleCacheKey(F, MFp, OFp + 1));

  auto M2 =
      compileMiniCOrDie("int main() { int a = 2; print(a); return a; }");
  EXPECT_NE(K1, scheduleCacheKey(*M2->functions()[0], MFp, OFp));
}

TEST(ScheduleCacheTest, LookupServesIdenticalFunction) {
  MachineDescription MD = MachineDescription::rs6k();
  PipelineOptions Opts;
  auto Scheduled = compileMiniCOrDie(
      "int main() { int s = 0; int i = 0; while (i < 9) { s = s + i * i; "
      "i = i + 1; } print(s); return s; }");
  auto Untouched = compileMiniCOrDie(
      "int main() { int s = 0; int i = 0; while (i < 9) { s = s + i * i; "
      "i = i + 1; } print(s); return s; }");

  Function &F = *Scheduled->functions()[0];
  uint64_t MFp = fingerprintMachine(MD);
  uint64_t OFp = fingerprintOptions(Opts);
  Key128 Key = scheduleCacheKey(F, MFp, OFp);

  PipelineStats Run = schedulePipeline(F, MD, Opts);

  ScheduleCache Cache;
  Cache.insert(Key, F, Run);
  EXPECT_EQ(Cache.size(), 1u);

  Function &G = *Untouched->functions()[0];
  PipelineStats Served;
  EXPECT_FALSE(Cache.lookup(scheduleCacheKey(F, MFp, OFp + 1), G, Served));
  ASSERT_TRUE(Cache.lookup(Key, G, Served));
  EXPECT_TRUE(functionsIdentical(F, G));
  EXPECT_EQ(Served.TransactionsRun, Run.TransactionsRun);

  ScheduleCacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Insertions, 1u);
}

TEST(ScheduleCacheTest, CapacityBoundEvictsLru) {
  auto M = compileMiniCOrDie("int main() { return 0; }");
  Function &F = *M->functions()[0];
  PipelineStats Stats;

  ScheduleCache Cache(/*Capacity=*/4, /*NumShards=*/1);
  for (uint64_t K = 0; K != 10; ++K)
    Cache.insert(Key128{K, K}, F, Stats);
  EXPECT_LE(Cache.size(), 4u);
  EXPECT_EQ(Cache.stats().Evictions, 6u);

  // The oldest keys are gone, the newest survive.
  PipelineStats Out;
  EXPECT_FALSE(Cache.lookup(Key128{0, 0}, F, Out));
  EXPECT_TRUE(Cache.lookup(Key128{9, 9}, F, Out));

  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
}

//===----------------------------------------------------------------------===
// CompileEngine
//===----------------------------------------------------------------------===

/// A deterministic batch of random programs; \p Copies > 1 repeats the
/// same sources to give the cache in-batch duplicates.  The seeds are
/// pinned to programs whose main finishes well under the interpreter's
/// step budget (some seeds generate deeply nested loops that run for
/// tens of millions of steps).
std::vector<std::string> batchSources(unsigned Programs, unsigned Copies) {
  static const uint64_t FastSeeds[] = {1001, 1002, 1004, 1006,
                                       1008, 1009, 1013, 1018};
  GIS_ASSERT(Programs <= std::size(FastSeeds), "not enough pinned seeds");
  std::vector<std::string> Sources;
  for (unsigned C = 0; C != Copies; ++C)
    for (unsigned K = 0; K != Programs; ++K)
      Sources.push_back(generateRandomMiniC(FastSeeds[K]));
  return Sources;
}

struct BatchModules {
  std::vector<std::unique_ptr<Module>> Modules;
  std::vector<BatchItem> Items;
};

BatchModules compileBatchSources(const std::vector<std::string> &Sources) {
  BatchModules B;
  for (size_t K = 0; K != Sources.size(); ++K) {
    B.Modules.push_back(compileMiniCOrDie(Sources[K]));
    B.Items.push_back(
        BatchItem{B.Modules.back().get(), "m" + std::to_string(K)});
  }
  return B;
}

/// Runs every module's main and returns the per-module simulated RS/6000
/// cycle counts.
std::vector<uint64_t> simulatedCycles(const BatchModules &B,
                                      const MachineDescription &MD) {
  std::vector<uint64_t> Cycles;
  for (const auto &M : B.Modules) {
    Interpreter I(*M);
    I.enableTrace(true);
    Function *Entry = M->findFunction("main");
    EXPECT_NE(Entry, nullptr);
    ExecResult R = I.run(*Entry);
    EXPECT_FALSE(R.Trapped);
    TimingSimulator Sim(MD);
    Cycles.push_back(Sim.simulate(I.trace()).Cycles);
  }
  return Cycles;
}

std::string printedBatch(const BatchModules &B) {
  std::string All;
  for (const auto &M : B.Modules)
    All += moduleToString(*M);
  return All;
}

TEST(CompileEngineTest, ParallelAndCachedCompilesAreBitIdentical) {
  MachineDescription MD = MachineDescription::rs6k();
  PipelineOptions Opts;
  std::vector<std::string> Sources =
      batchSources(/*Programs=*/6, /*Copies=*/2);

  struct Config {
    unsigned Jobs;
    bool Cache;
  };
  // Parallel width follows the host rather than a hardcoded 8: at least 2
  // so the parallel path is exercised everywhere, at most 8 so small CI
  // hosts are not oversubscribed.
  const unsigned Par = std::clamp(ThreadPool::hardwareThreads(), 2u, 8u);
  const Config Configs[] = {{1, false}, {Par, false}, {1, true}, {Par, true}};

  std::string ReferenceIR;
  std::vector<uint64_t> ReferenceCycles;
  for (const Config &C : Configs) {
    BatchModules B = compileBatchSources(Sources);
    EngineOptions EOpts;
    EOpts.Jobs = C.Jobs;
    EOpts.UseCache = C.Cache;
    CompileEngine Engine(MD, Opts, EOpts);
    EngineReport Report = Engine.compileBatch(B.Items);
    EXPECT_EQ(Report.FunctionsCompiled, Report.PerFunction.size());
    EXPECT_EQ(Report.rollbacks(), 0u);

    std::string IR = printedBatch(B);
    std::vector<uint64_t> Cycles = simulatedCycles(B, MD);
    if (ReferenceIR.empty()) {
      ReferenceIR = IR;
      ReferenceCycles = Cycles;
      continue;
    }
    // The headline determinism contract: worker count and cache state are
    // invisible in the output, bit for bit and cycle for cycle.
    EXPECT_EQ(IR, ReferenceIR)
        << "jobs=" << C.Jobs << " cache=" << C.Cache;
    EXPECT_EQ(Cycles, ReferenceCycles)
        << "jobs=" << C.Jobs << " cache=" << C.Cache;
  }
}

TEST(CompileEngineTest, InBatchDuplicatesHitTheCache) {
  MachineDescription MD = MachineDescription::rs6k();
  PipelineOptions Opts;
  // 3 copies of 4 programs: at most one miss per distinct function.
  std::vector<std::string> Sources = batchSources(4, 3);
  BatchModules B = compileBatchSources(Sources);

  EngineOptions EOpts;
  EOpts.Jobs = 1;
  CompileEngine Engine(MD, Opts, EOpts);
  EngineReport Report = Engine.compileBatch(B.Items);

  unsigned FuncsPerCopy = Report.FunctionsCompiled / 3;
  EXPECT_EQ(Report.CacheMisses, FuncsPerCopy);
  EXPECT_EQ(Report.CacheHits, 2u * FuncsPerCopy);
}

TEST(CompileEngineTest, WarmCacheServesRepeatedBatch) {
  MachineDescription MD = MachineDescription::rs6k();
  PipelineOptions Opts;
  std::vector<std::string> Sources = batchSources(5, 1);

  ScheduleCache Shared;
  EngineOptions EOpts;
  EOpts.Jobs = 4;
  EOpts.SharedCache = &Shared;
  CompileEngine Engine(MD, Opts, EOpts);

  BatchModules Cold = compileBatchSources(Sources);
  EngineReport First = Engine.compileBatch(Cold.Items);
  EXPECT_EQ(First.CacheHits, 0u);

  BatchModules Warm = compileBatchSources(Sources);
  EngineReport Second = Engine.compileBatch(Warm.Items);
  EXPECT_EQ(Second.CacheMisses, 0u);
  EXPECT_GE(Second.cacheHitRate(), 0.9);
  EXPECT_EQ(printedBatch(Warm), printedBatch(Cold));
}

TEST(CompileEngineTest, AggregatesFaultInjectionRollbacks) {
  MachineDescription MD = MachineDescription::rs6k();
  PipelineOptions Opts;
  std::vector<std::string> Sources = batchSources(3, 1);
  BatchModules B = compileBatchSources(Sources);

  FaultInjector::instance().arm("local:2");
  EngineOptions EOpts;
  EOpts.Jobs = 1; // deterministic: the fault lands on the second function
  EOpts.UseCache = false;
  CompileEngine Engine(MD, Opts, EOpts);
  EngineReport Report = Engine.compileBatch(B.Items);
  FaultInjector::instance().disarm();

  EXPECT_EQ(Report.Aggregate.FaultsInjected, 1u);
  EXPECT_EQ(Report.Aggregate.TransformsRolledBack, 1u);
  EXPECT_EQ(Report.Aggregate.Diags.size(), 1u);
}

TEST(CompileEngineTest, OracleWidensWorkUnitToModule) {
  MachineDescription MD = MachineDescription::rs6k();
  PipelineOptions Opts;
  Opts.EnableOracle = true;
  Opts.OracleMaxSteps = 200'000;
  std::vector<std::string> Sources = batchSources(3, 1);
  BatchModules B = compileBatchSources(Sources);

  EngineOptions EOpts;
  EOpts.Jobs = 4;
  CompileEngine Engine(MD, Opts, EOpts);
  EngineReport Report = Engine.compileBatch(B.Items);
  // The oracle disables the cache (its verdict depends on sibling
  // functions, which the content hash does not cover).
  EXPECT_EQ(Report.CacheHits, 0u);
  EXPECT_EQ(Report.Aggregate.OracleMismatches, 0u);
  EXPECT_EQ(Report.rollbacks(), 0u);
}

TEST(CompileEngineTest, SingleModuleConvenience) {
  auto M = compileMiniCOrDie(
      "int main() { int i = 0; int s = 0; while (i < 4) { s = s + 2 * i; "
      "i = i + 1; } print(s); return s; }");
  CompileEngine Engine(MachineDescription::rs6k(), PipelineOptions{});
  EngineReport Report = Engine.compile(*M);
  EXPECT_EQ(Report.FunctionsCompiled, 1u);
  EXPECT_FALSE(Report.summary().empty());
}

} // namespace

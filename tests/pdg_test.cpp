//===- tests/pdg_test.cpp - Region / CSPDG / DDG tests ---------------------===//
//
// Regions (Section 5.1), control dependences and equivalence classes
// (Section 4.1, Figure 4), data dependences with transitive reduction
// (Section 4.2) and motion classification (Definitions 4-7).
//
//===----------------------------------------------------------------------===//

#include "analysis/ControlDeps.h"
#include "analysis/DataDeps.h"
#include "analysis/MemDisambig.h"
#include "analysis/PDG.h"
#include "analysis/Region.h"
#include "ir/Parser.h"
#include "machine/MachineDescription.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

const char *MinmaxFull = R"(
func minmax {
BL0:
  LI r31 = 1000
  L r28 = mem[r31 + 0]
  LR r30 = r28
  LI r29 = 1
BL1:
  L r12 = mem[r31 + 4]
  LU r0, r31 = mem[r31 + 8]
  C cr7 = r12, r0
  BF BL6, cr7, gt
BL2:
  C cr6 = r12, r30
  BF BL4, cr6, gt
BL3:
  LR r30 = r12
BL4:
  C cr7 = r0, r28
  BF BL10, cr7, lt
BL5:
  LR r28 = r0
  B BL10
BL6:
  C cr6 = r0, r30
  BF BL8, cr6, gt
BL7:
  LR r30 = r0
BL8:
  C cr7 = r12, r28
  BF BL10, cr7, lt
BL9:
  LR r28 = r12
BL10:
  AI r29 = r29, 2
  C cr4 = r29, r27
  BT BL1, cr4, lt
BL11:
  CALL print(r28)
  CALL print(r30)
  RET
}
)";

BlockId blockByLabel(const Function &F, const std::string &Label) {
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    if (F.block(B).label() == Label)
      return B;
  ADD_FAILURE() << "no block " << Label;
  return InvalidId;
}

/// Builds the loop region of minmax and its PDG.
struct MinmaxFixture {
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  LoopInfo LI;
  SchedRegion R;
  PDG P;

  MinmaxFixture()
      : M(parseModuleOrDie(MinmaxFull)), F(M->functions()[0].get()),
        LI(LoopInfo::compute(*F)), R(SchedRegion::build(*F, LI, 0)),
        P(PDG::build(*F, R, MachineDescription::rs6k())) {}

  unsigned node(const std::string &Label) const {
    int N = R.nodeOfBlock(blockByLabel(*F, Label));
    EXPECT_GE(N, 0) << Label;
    return static_cast<unsigned>(N);
  }
};

} // namespace

//===----------------------------------------------------------------------===
// Regions
//===----------------------------------------------------------------------===

TEST(RegionTest, MinmaxLoopRegion) {
  MinmaxFixture X;
  EXPECT_EQ(X.R.numRealBlocks(), 10u);
  EXPECT_EQ(X.R.numInstrs(), 20u); // I1..I20
  EXPECT_EQ(X.R.numNodes(), 10u); // no inner loops
  EXPECT_EQ(X.R.entryNode(), X.node("BL1"));
  // Pre-header and exit blocks are not part of the region.
  EXPECT_EQ(X.R.nodeOfBlock(blockByLabel(*X.F, "BL0")), -1);
  EXPECT_EQ(X.R.nodeOfBlock(blockByLabel(*X.F, "BL11")), -1);
  // The forward graph is acyclic with BL10 as the (only) exit.
  EXPECT_TRUE(isAcyclic(X.R.forwardGraph()));
  ASSERT_EQ(X.R.exitNodes().size(), 1u);
  EXPECT_EQ(X.R.exitNodes()[0], X.node("BL10"));
  // Topological order starts at the header.
  ASSERT_FALSE(X.R.topoOrder().empty());
  EXPECT_EQ(X.R.topoOrder().front(), X.node("BL1"));
}

TEST(RegionTest, TopLevelRegionCollapsesLoop) {
  MinmaxFixture X;
  SchedRegion Top = SchedRegion::build(*X.F, X.LI, -1);
  // BL0, BL11 as real blocks + one loop summary.
  EXPECT_EQ(Top.numRealBlocks(), 2u);
  EXPECT_EQ(Top.numNodes(), 3u);
  unsigned Summaries = 0;
  for (const RegionNode &N : Top.nodes())
    Summaries += N.isLoopSummary();
  EXPECT_EQ(Summaries, 1u);
  EXPECT_TRUE(isAcyclic(Top.forwardGraph()));
}

TEST(RegionTest, NestedLoopRegionHasSummary) {
  auto M = parseModuleOrDie(R"(
func nest {
B0:
  LI r1 = 0
OUTER:
  LI r2 = 0
INNER:
  AI r2 = r2, 1
  CI cr0 = r2, 10
  BT INNER, cr0, lt
AFTER:
  AI r1 = r1, 1
  CI cr1 = r1, 10
  BT OUTER, cr1, lt
EXIT:
  RET
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  int OuterIdx = LI.innermostLoopOf(blockByLabel(F, "OUTER"));
  ASSERT_GE(OuterIdx, 0);
  SchedRegion R = SchedRegion::build(F, LI, OuterIdx);
  // OUTER and AFTER are real; INNER is a summary.
  EXPECT_EQ(R.numRealBlocks(), 2u);
  EXPECT_EQ(R.numNodes(), 3u);
  EXPECT_TRUE(isAcyclic(R.forwardGraph()));
}

//===----------------------------------------------------------------------===
// Control dependences: paper Figure 4
//===----------------------------------------------------------------------===

TEST(ControlDepsTest, MinmaxFigure4Structure) {
  MinmaxFixture X;
  const ControlDeps &CD = X.P.controlDeps();

  unsigned BL1 = X.node("BL1"), BL2 = X.node("BL2"), BL3 = X.node("BL3"),
           BL4 = X.node("BL4"), BL5 = X.node("BL5"), BL6 = X.node("BL6"),
           BL8 = X.node("BL8"), BL10 = X.node("BL10");

  // BL1 and BL10 depend on nothing (they always execute).
  EXPECT_TRUE(CD.deps(BL1).empty());
  EXPECT_TRUE(CD.deps(BL10).empty());

  // BL2 and BL4 depend only on BL1 (same condition); likewise BL6, BL8.
  ASSERT_EQ(CD.deps(BL2).size(), 1u);
  EXPECT_EQ(CD.deps(BL2)[0].Controller, BL1);
  EXPECT_EQ(CD.deps(BL2), CD.deps(BL4));
  ASSERT_EQ(CD.deps(BL6).size(), 1u);
  EXPECT_EQ(CD.deps(BL6)[0].Controller, BL1);
  EXPECT_EQ(CD.deps(BL6), CD.deps(BL8));
  // ... under *different* conditions for the two arms.
  EXPECT_NE(CD.deps(BL2)[0].EdgeLabel, CD.deps(BL6)[0].EdgeLabel);

  // BL3 depends on BL2; BL5 depends on BL4.
  ASSERT_EQ(CD.deps(BL3).size(), 1u);
  EXPECT_EQ(CD.deps(BL3)[0].Controller, BL2);
  ASSERT_EQ(CD.deps(BL5).size(), 1u);
  EXPECT_EQ(CD.deps(BL5)[0].Controller, BL4);

  // Identically-control-dependent equivalences of Figure 4.
  EXPECT_TRUE(CD.identicallyControlDependent(BL1, BL10));
  EXPECT_TRUE(CD.identicallyControlDependent(BL2, BL4));
  EXPECT_TRUE(CD.identicallyControlDependent(BL6, BL8));
  EXPECT_FALSE(CD.identicallyControlDependent(BL2, BL6));
  EXPECT_FALSE(CD.identicallyControlDependent(BL1, BL2));

  // CSPDG successors of BL1 are exactly the two arms' heads.
  std::vector<unsigned> Succs = CD.cspdgSuccs(BL1);
  EXPECT_EQ(Succs.size(), 4u); // BL2, BL4, BL6, BL8
}

TEST(ControlDepsTest, SpeculationDegrees) {
  MinmaxFixture X;
  const ControlDeps &CD = X.P.controlDeps();
  unsigned BL1 = X.node("BL1"), BL5 = X.node("BL5"), BL8 = X.node("BL8"),
           BL10 = X.node("BL10");

  // Paper Section 4.1: moving from BL8 to BL1 gambles on one branch;
  // moving from BL5 to BL1 gambles on two.
  EXPECT_EQ(CD.specDegree(BL1, BL8), std::optional<unsigned>(1));
  EXPECT_EQ(CD.specDegree(BL1, BL5), std::optional<unsigned>(2));
  EXPECT_EQ(CD.specDegree(BL1, BL1), std::optional<unsigned>(0));
  // BL10 is not control dependent on anything: unreachable in the CSPDG.
  EXPECT_FALSE(CD.specDegree(BL1, BL10).has_value());
}

//===----------------------------------------------------------------------===
// Motion classification (Definitions 4-7)
//===----------------------------------------------------------------------===

TEST(PDGTest, MotionClassification) {
  MinmaxFixture X;
  unsigned BL1 = X.node("BL1"), BL2 = X.node("BL2"), BL4 = X.node("BL4"),
           BL5 = X.node("BL5"), BL8 = X.node("BL8"), BL10 = X.node("BL10");

  // Useful: BL10 -> BL1 (equivalent blocks).
  EXPECT_EQ(X.P.classifyMotion(BL10, BL1).Kind, MotionKind::Useful);
  EXPECT_EQ(X.P.classifyMotion(BL4, BL2).Kind, MotionKind::Useful);

  // Speculative: BL2 -> BL1 (one branch), BL5 -> BL1 (two branches).
  MotionClass C1 = X.P.classifyMotion(BL2, BL1);
  EXPECT_EQ(C1.Kind, MotionKind::Speculative);
  EXPECT_EQ(C1.SpeculationDegree, 1u);
  MotionClass C2 = X.P.classifyMotion(BL5, BL1);
  EXPECT_EQ(C2.Kind, MotionKind::Speculative);
  EXPECT_EQ(C2.SpeculationDegree, 2u);
  MotionClass C3 = X.P.classifyMotion(BL8, BL1);
  EXPECT_EQ(C3.Kind, MotionKind::Speculative);
  EXPECT_EQ(C3.SpeculationDegree, 1u);

  // Duplication: BL10 -> BL2 (BL2 does not dominate BL10, but BL10
  // postdominates BL2).
  EXPECT_EQ(X.P.classifyMotion(BL10, BL2).Kind, MotionKind::Duplication);

  // Speculative + duplication: BL5 -> BL2? BL2 dominates... check a pair
  // where neither dominance nor postdominance holds: BL5 -> BL8 (opposite
  // arms).
  EXPECT_EQ(X.P.classifyMotion(BL5, BL8).Kind, MotionKind::SpecAndDup);

  EXPECT_EQ(X.P.classifyMotion(BL1, BL1).Kind, MotionKind::Identity);
}

TEST(PDGTest, EquivAndCandidateSets) {
  MinmaxFixture X;
  unsigned BL1 = X.node("BL1"), BL2 = X.node("BL2"), BL4 = X.node("BL4"),
           BL6 = X.node("BL6"), BL8 = X.node("BL8"), BL10 = X.node("BL10");

  // EQUIV(BL1) = {BL10}; EQUIV(BL2) = {BL4}; EQUIV(BL6) = {BL8}.
  EXPECT_EQ(X.P.equivSet(BL1), std::vector<unsigned>{BL10});
  EXPECT_EQ(X.P.equivSet(BL2), std::vector<unsigned>{BL4});
  EXPECT_EQ(X.P.equivSet(BL6), std::vector<unsigned>{BL8});
  // Dominated-by ordering: EQUIV(BL10) is empty (BL10 dominates nobody in
  // its class).
  EXPECT_TRUE(X.P.equivSet(BL10).empty());

  // Useful-only candidates: C(A) = EQUIV(A).
  EXPECT_EQ(X.P.candidateBlocks(BL1, 0), std::vector<unsigned>{BL10});

  // 1-branch speculative candidates for BL1: EQUIV(BL1) + CSPDG succs of
  // BL1 and BL10 = {BL10, BL2, BL4, BL6, BL8}.
  std::vector<unsigned> C = X.P.candidateBlocks(BL1, 1);
  EXPECT_EQ(C.size(), 5u);
  for (unsigned N : {BL2, BL4, BL6, BL8, BL10})
    EXPECT_NE(std::find(C.begin(), C.end(), N), C.end());

  // Depth 2 additionally reaches the update blocks.
  std::vector<unsigned> C2 = X.P.candidateBlocks(BL1, 2);
  EXPECT_GT(C2.size(), C.size());
}

//===----------------------------------------------------------------------===
// Data dependences: paper Section 4.2 ground truth for BL1
//===----------------------------------------------------------------------===

TEST(DataDepsTest, MinmaxBL1GroundTruth) {
  MinmaxFixture X;
  const DataDeps &DD = X.P.dataDeps();
  const Function &F = *X.F;

  // Instructions of BL1: I1 (L), I2 (LU), I3 (C), I4 (BF).
  const std::vector<InstrId> &BL1 = F.block(blockByLabel(F, "BL1")).instrs();
  int N1 = DD.nodeOfInstr(BL1[0]), N2 = DD.nodeOfInstr(BL1[1]),
      N3 = DD.nodeOfInstr(BL1[2]), N4 = DD.nodeOfInstr(BL1[3]);
  ASSERT_GE(N1, 0);

  auto FindEdge = [&](int From, int To) -> const DepEdge * {
    for (unsigned E : DD.succEdges(static_cast<unsigned>(From)))
      if (DD.edges()[E].To == static_cast<unsigned>(To))
        return &DD.edges()[E];
    return nullptr;
  };

  // Anti-dependence I1 -> I2 (I1 uses r31, I2 redefines it).
  const DepEdge *E12 = FindEdge(N1, N2);
  ASSERT_NE(E12, nullptr);
  EXPECT_EQ(E12->Kind, DepKind::Anti);
  EXPECT_EQ(E12->Delay, 0u);

  // Flow I2 -> I3 with the delayed-load 1-cycle delay.  Per the paper,
  // "((I1),(I3)) is not computed since it is transitive" (through the
  // anti edge (I1,I2) and the flow edge (I2,I3)).
  const DepEdge *E23 = FindEdge(N2, N3);
  ASSERT_NE(E23, nullptr);
  EXPECT_EQ(E23->Kind, DepKind::Flow);
  EXPECT_EQ(E23->Delay, 1u);
  EXPECT_EQ(FindEdge(N1, N3), nullptr);
  EXPECT_TRUE(DD.depends(static_cast<unsigned>(N1),
                         static_cast<unsigned>(N3)));

  // Flow I3 -> I4 with the 3-cycle compare->branch delay.
  const DepEdge *E34 = FindEdge(N3, N4);
  ASSERT_NE(E34, nullptr);
  EXPECT_EQ(E34->Kind, DepKind::Flow);
  EXPECT_EQ(E34->Delay, 3u);

  // Transitive edges are NOT computed: I1 -> I4 and I2 -> I4 are implied.
  EXPECT_EQ(FindEdge(N1, N4), nullptr);
  EXPECT_EQ(FindEdge(N2, N4), nullptr);
  // But transitive reachability is still visible.
  EXPECT_TRUE(DD.depends(static_cast<unsigned>(N1),
                         static_cast<unsigned>(N4)));

  // The two loads are independent (loads never conflict; the base-update
  // anti edge is I1->I2, not a memory edge).
  EXPECT_FALSE(DD.depends(static_cast<unsigned>(N2),
                          static_cast<unsigned>(N1)));
}

TEST(DataDepsTest, InterblockDependences) {
  MinmaxFixture X;
  const DataDeps &DD = X.P.dataDeps();
  const Function &F = *X.F;

  // I18 (AI r29) in BL10 depends on nothing in the loop body; its only
  // intra-region predecessor set is empty, so it can move up to BL1.
  InstrId I18 = F.block(blockByLabel(F, "BL10")).instrs()[0];
  int N18 = DD.nodeOfInstr(I18);
  ASSERT_GE(N18, 0);
  EXPECT_TRUE(DD.predEdges(static_cast<unsigned>(N18)).empty());

  // I19 (C cr4 = r29, r27) depends on I18 (flow on r29).
  InstrId I19 = F.block(blockByLabel(F, "BL10")).instrs()[1];
  int N19 = DD.nodeOfInstr(I19);
  EXPECT_TRUE(DD.hasEdge(static_cast<unsigned>(N18),
                         static_cast<unsigned>(N19)));

  // I7 (LR r30 = r12 in BL3) has a flow edge from I1 (defines r12 in BL1).
  InstrId I1 = F.block(blockByLabel(F, "BL1")).instrs()[0];
  InstrId I7 = F.block(blockByLabel(F, "BL3")).instrs()[0];
  EXPECT_TRUE(DD.depends(static_cast<unsigned>(DD.nodeOfInstr(I1)),
                         static_cast<unsigned>(DD.nodeOfInstr(I7))));

  // No dependence between the two arms of the if (BL2/BL4 vs BL6/BL8
  // instruction pairs are not reachable from each other): LR r30=r12 (BL3)
  // and LR r30=r0 (BL7) share a def but are on exclusive paths.
  InstrId I14 = F.block(blockByLabel(F, "BL7")).instrs()[0];
  int N7 = DD.nodeOfInstr(I7), N14 = DD.nodeOfInstr(I14);
  EXPECT_FALSE(DD.depends(static_cast<unsigned>(N7),
                          static_cast<unsigned>(N14)));
  EXPECT_FALSE(DD.depends(static_cast<unsigned>(N14),
                          static_cast<unsigned>(N7)));
}

TEST(DataDepsTest, MemoryEdgesStoreLoad) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  ST mem[r1 + 0] = r2
  L r3 = mem[r1 + 0]
  L r4 = mem[r1 + 4]
  ST mem[r5 + 0] = r2
  RET r3
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  DataDeps DD = DataDeps::compute(F, R, MachineDescription::rs6k());

  int S0 = DD.nodeOfInstr(0), L1 = DD.nodeOfInstr(1), L2 = DD.nodeOfInstr(2),
      S3 = DD.nodeOfInstr(3);

  // Store then load of the same address: memory dependence.
  EXPECT_TRUE(DD.depends(S0, L1));
  // Same base, different displacement: provably disjoint.
  EXPECT_FALSE(DD.depends(S0, L2));
  // Different (unrelated) bases: conservative dependence; the load L1 and
  // store S3 may alias.
  EXPECT_TRUE(DD.depends(L1, S3));
}

TEST(DataDepsTest, CallsAreBarriers) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  L r1 = mem[r9 + 0]
  CALL print(r1)
  L r2 = mem[r9 + 4]
  RET r2
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  DataDeps DD = DataDeps::compute(F, R, MachineDescription::rs6k());
  // Loads on both sides of the call depend on it.
  EXPECT_TRUE(DD.depends(DD.nodeOfInstr(0), DD.nodeOfInstr(1)));
  EXPECT_TRUE(DD.depends(DD.nodeOfInstr(1), DD.nodeOfInstr(2)));
}

TEST(DataDepsTest, InnerLoopBarrier) {
  auto M = parseModuleOrDie(R"(
func nest {
PRE:
  LI r1 = 0
  LI r5 = 77
LOOP:
  AI r1 = r1, 1
  CI cr0 = r1, 10
  BT LOOP, cr0, lt
POST:
  AI r2 = r1, 5
  AI r6 = r5, 1
  RET r2
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  DataDeps DD = DataDeps::compute(F, R, MachineDescription::rs6k());

  // Find the barrier node.
  int Barrier = -1;
  for (unsigned N = 0; N != DD.numNodes(); ++N)
    if (DD.ddgNode(N).isBarrier())
      Barrier = static_cast<int>(N);
  ASSERT_GE(Barrier, 0);

  // POST's "AI r2 = r1, 5" uses r1 which the loop defines: flow through
  // the barrier.
  InstrId PostAI = F.block(blockByLabel(F, "POST")).instrs()[0];
  EXPECT_TRUE(DD.depends(static_cast<unsigned>(Barrier),
                         DD.nodeOfInstr(PostAI)));

  // "AI r6 = r5, 1" only uses r5 (untouched by the loop): independent of
  // the barrier, so it could move above the loop.
  InstrId PostAI2 = F.block(blockByLabel(F, "POST")).instrs()[1];
  EXPECT_FALSE(DD.depends(static_cast<unsigned>(Barrier),
                          DD.nodeOfInstr(PostAI2)));
}

//===----------------------------------------------------------------------===
// Memory disambiguation
//===----------------------------------------------------------------------===

TEST(MemDisambigTest, ConstantBasesResolve) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 1000
  LI r2 = 2000
  ST mem[r1 + 0] = r9
  ST mem[r2 + 0] = r9
  ST mem[r1 + 0] = r9
  RET
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  MemDisambiguator D(F, R);
  // Different constant addresses: disjoint.
  EXPECT_TRUE(D.provablyDisjoint(2, 3));
  // Same constant address: not disjoint.
  EXPECT_FALSE(D.provablyDisjoint(2, 4));
}

TEST(MemDisambigTest, AffineChainThroughAI) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 1000
  AI r2 = r1, 8
  ST mem[r1 + 8] = r9
  L r3 = mem[r2 + 0]
  L r4 = mem[r2 + 4]
  RET r4
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  MemDisambiguator D(F, R);
  // mem[r1+8] and mem[r2+0] are the same address (r2 = r1 + 8).
  EXPECT_FALSE(D.provablyDisjoint(2, 3));
  // mem[r1+8] and mem[r2+4] differ by 4.
  EXPECT_TRUE(D.provablyDisjoint(2, 4));
}

TEST(MemDisambigTest, MultiplyDefinedBaseIsConservative) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 1000
  CI cr0 = r9, 0
  BT B2, cr0, gt
B1:
  LI r1 = 2000
B2:
  ST mem[r1 + 0] = r9
  LI r7 = 3000
  L r3 = mem[r7 + 4]
  RET r3
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  MemDisambiguator D(F, R);
  // r1 has two defs: the store address is unresolvable; r7 resolves but
  // roots differ in provability -> conservative "may alias".
  InstrId Store = F.block(blockByLabel(F, "B2")).instrs()[0];
  InstrId Load = F.block(blockByLabel(F, "B2")).instrs()[2];
  EXPECT_FALSE(D.provablyDisjoint(Store, Load));
}

TEST(MemDisambigTest, SameBlockSameBaseDifferentDisp) {
  auto M = parseModuleOrDie(R"(
func f {
LOOP:
  ST mem[r31 + 4] = r9
  LU r0, r31 = mem[r31 + 8]
  C cr0 = r0, r9
  BT LOOP, cr0, lt
EXIT:
  RET
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, 0);
  MemDisambiguator D(F, R);
  // Same base r31, different displacements, no redefinition between the
  // store and the LU's access (the LU's own update happens after its
  // access): provably disjoint even though r31 changes each iteration.
  EXPECT_TRUE(D.provablyDisjoint(0, 1));
}

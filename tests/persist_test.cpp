//===- tests/persist_test.cpp - Persistent schedule cache tests ------------===//
//
// The crash-safe disk tier (persist/DiskCache.h, persist/PersistIO.h):
// warm restarts serve bit-identical schedules from disk; every corruption
// mode -- torn writes, version skew, checksum damage, short files, key
// mismatches -- is quarantined and treated as a miss, never a crash and
// never a wrong hit; every I/O failure mode degrades the engine to
// memory-only with a diagnostic.  The headline property: a fault-injected
// torn-write run completes with zero wrong-schedule results.
//
//===----------------------------------------------------------------------===//

#include "engine/CompileEngine.h"
#include "frontend/CodeGen.h"
#include "ir/Printer.h"
#include "persist/DiskCache.h"
#include "persist/PersistIO.h"
#include "support/FaultInjection.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace gis;
using namespace gis::persist;

namespace {

/// A self-deleting temporary directory under the test's working directory.
struct TempDir {
  std::string Path;
  explicit TempDir(const char *Tag) {
    std::string Template = std::string(Tag) + "-XXXXXX";
    std::vector<char> Buf(Template.begin(), Template.end());
    Buf.push_back('\0');
    const char *P = ::mkdtemp(Buf.data());
    EXPECT_NE(P, nullptr);
    Path = P ? P : Template;
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
};

/// Schedules `main` of \p Source through a fresh engine over \p CacheDir
/// and returns the scheduled function text plus the report.
struct RunResult {
  std::string Text;
  EngineReport Report;
};

RunResult runOnce(const std::string &Source, const std::string &CacheDir,
                  bool UseCache = true) {
  auto M = compileMiniCOrDie(Source);
  EngineOptions EOpts;
  EOpts.Jobs = 1;
  EOpts.UseCache = UseCache;
  EOpts.CacheDir = CacheDir;
  CompileEngine Engine(MachineDescription::rs6k(), PipelineOptions{},
                       EOpts);
  RunResult R;
  R.Report = Engine.compile(*M);
  R.Text = moduleToString(*M);
  return R;
}

const char *kSource =
    "int main() { int i = 0; int s = 0; while (i < 6) { s = s + 3 * i; "
    "i = i + 1; } print(s); return s; }";

size_t countEntries(const std::string &Dir) {
  size_t N = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir))
    if (E.is_regular_file() && E.path().extension() == ".gse")
      ++N;
  return N;
}

size_t countQuarantined(const std::string &Dir) {
  std::filesystem::path Q = std::filesystem::path(Dir) / "quarantine";
  if (!std::filesystem::exists(Q))
    return 0;
  size_t N = 0;
  for (const auto &E : std::filesystem::directory_iterator(Q))
    if (E.is_regular_file())
      ++N;
  return N;
}

//===----------------------------------------------------------------------===
// PersistIO primitives
//===----------------------------------------------------------------------===

TEST(PersistIOTest, AtomicWriteThenReadRoundTrips) {
  TempDir D("gis-pio");
  std::string Payload = "bytes\0with\nembedded\0nuls";
  ASSERT_TRUE(atomicWriteFile(D.Path, "x.bin", Payload).isOk());
  std::string Back;
  bool Exists = false;
  ASSERT_TRUE(readFile(D.Path + "/x.bin", Back, Exists).isOk());
  EXPECT_TRUE(Exists);
  EXPECT_EQ(Back, Payload);
  // No temp litter after a clean publish.
  for (const auto &E : std::filesystem::directory_iterator(D.Path))
    EXPECT_EQ(E.path().filename().string().rfind(".tmp-", 0),
              std::string::npos);
}

TEST(PersistIOTest, MissingFileIsNotAnError) {
  TempDir D("gis-pio");
  std::string Out;
  bool Exists = true;
  ASSERT_TRUE(readFile(D.Path + "/absent", Out, Exists).isOk());
  EXPECT_FALSE(Exists);
  EXPECT_TRUE(Out.empty());
}

TEST(PersistIOTest, QuarantineMovesTheFileAside) {
  TempDir D("gis-pio");
  ASSERT_TRUE(atomicWriteFile(D.Path, "bad.gse", "junk").isOk());
  ASSERT_TRUE(quarantineFile(D.Path, "bad.gse", "checksum").isOk());
  EXPECT_FALSE(std::filesystem::exists(D.Path + "/bad.gse"));
  EXPECT_EQ(countQuarantined(D.Path), 1u);
}

TEST(PersistIOTest, ProbeRejectsNonDirectory) {
  TempDir D("gis-pio");
  std::ofstream(D.Path + "/file") << "x";
  Status S = probeWritable(D.Path + "/file/sub");
  EXPECT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), ErrorCode::PersistIOFailed);
}

//===----------------------------------------------------------------------===
// Warm restart
//===----------------------------------------------------------------------===

TEST(DiskCacheTest, WarmRestartServesBitIdenticalSchedule) {
  TempDir D("gis-disk");
  RunResult Cold = runOnce(kSource, D.Path);
  EXPECT_EQ(Cold.Report.DiskHits, 0u);
  EXPECT_EQ(Cold.Report.Disk.Inserts, 1u);
  EXPECT_EQ(countEntries(D.Path), 1u);

  // A fresh engine simulates a process restart: the memory tier is empty,
  // so the hit must come from disk -- and replay the same bytes.
  RunResult Warm = runOnce(kSource, D.Path);
  EXPECT_EQ(Warm.Report.DiskHits, 1u);
  EXPECT_EQ(Warm.Report.CacheHits, 1u);
  EXPECT_EQ(Warm.Text, Cold.Text);
  // Replayed stats match the computed ones (scalars travel with the entry).
  EXPECT_EQ(Warm.Report.Aggregate.Global.UsefulMotions,
            Cold.Report.Aggregate.Global.UsefulMotions);
  EXPECT_EQ(Warm.Report.Aggregate.Global.RegionsScheduled,
            Cold.Report.Aggregate.Global.RegionsScheduled);
  EXPECT_EQ(Warm.Report.Disk.Quarantines, 0u); // clean path: no leaks
}

TEST(DiskCacheTest, CleanPathNeverQuarantines) {
  TempDir D("gis-disk");
  for (unsigned K = 0; K != 3; ++K) {
    RunResult R = runOnce(generateRandomMiniC(1000 + K), D.Path);
    EXPECT_EQ(R.Report.Disk.Quarantines, 0u);
    EXPECT_FALSE(R.Report.Disk.Degraded);
  }
  // Re-run the same seeds on fresh engines: all disk hits, still clean.
  for (unsigned K = 0; K != 3; ++K) {
    RunResult R = runOnce(generateRandomMiniC(1000 + K), D.Path);
    EXPECT_GT(R.Report.DiskHits, 0u);
    EXPECT_EQ(R.Report.Disk.Quarantines, 0u);
  }
  EXPECT_EQ(countQuarantined(D.Path), 0u);
}

//===----------------------------------------------------------------------===
// Torn writes (the headline crash-safety property)
//===----------------------------------------------------------------------===

TEST(DiskCacheTest, TornWriteIsQuarantinedNotTrustedNotFatal) {
  TempDir D("gis-disk");
  // Baseline: the schedule this source must always produce.
  RunResult Baseline = runOnce(kSource, "", /*UseCache=*/false);

  // Write the entry torn: half its bytes persist, then the write
  // "succeeds" -- a crash between write and durability.
  FaultInjector::instance().arm("persist-truncate");
  RunResult Torn = runOnce(kSource, D.Path);
  FaultInjector::instance().disarm();
  EXPECT_EQ(Torn.Text, Baseline.Text); // the compile itself is unharmed
  ASSERT_EQ(countEntries(D.Path), 1u);

  // Restart: the torn entry must be quarantined and recompiled around --
  // quarantine count > 0, crash count = 0, output bit-identical to the
  // never-cached baseline.
  RunResult Recovered = runOnce(kSource, D.Path);
  EXPECT_EQ(Recovered.Report.DiskHits, 0u);
  EXPECT_GT(Recovered.Report.Disk.Quarantines, 0u);
  EXPECT_EQ(Recovered.Text, Baseline.Text);
  EXPECT_EQ(countQuarantined(D.Path), 1u);
  EXPECT_FALSE(Recovered.Report.Aggregate.Diags.empty());

  // The recompile republished a sound entry; the next restart hits it.
  RunResult Final = runOnce(kSource, D.Path);
  EXPECT_EQ(Final.Report.DiskHits, 1u);
  EXPECT_EQ(Final.Text, Baseline.Text);
}

TEST(DiskCacheTest, TornWriteRecoveryPassesTheOracle) {
  TempDir D("gis-disk");
  std::string Source = generateRandomMiniC(77);
  FaultInjector::instance().arm("persist-truncate");
  runOnce(Source, D.Path);
  FaultInjector::instance().disarm();

  // Recompile after the "crash" with the differential oracle watching.
  // The oracle path bypasses the caches entirely, so this checks the
  // recovered *program*, not the cache bookkeeping: scheduled behaviour
  // still matches the original on the interpreter.
  auto M = compileMiniCOrDie(Source);
  PipelineOptions Opts;
  Opts.EnableOracle = true;
  Opts.OracleMaxSteps = 500'000;
  EngineOptions EOpts;
  EOpts.Jobs = 1;
  CompileEngine Engine(MachineDescription::rs6k(), Opts, EOpts);
  EngineReport R = Engine.compile(*M);
  EXPECT_EQ(R.Aggregate.OracleMismatches, 0u);
  EXPECT_EQ(R.Aggregate.EngineFailures, 0u);
}

//===----------------------------------------------------------------------===
// I/O failure degradation
//===----------------------------------------------------------------------===

TEST(DiskCacheTest, WriteFailureDegradesToMemoryOnly) {
  TempDir D("gis-disk");
  FaultInjector::instance().arm("persist-write");
  RunResult R = runOnce(kSource, D.Path);
  FaultInjector::instance().disarm();
  EXPECT_TRUE(R.Report.Disk.Degraded);
  EXPECT_EQ(R.Report.Disk.WriteFailures, 1u);
  EXPECT_EQ(countEntries(D.Path), 0u);
  // The degradation left a diagnostic on the established channel.
  bool Found = false;
  for (const Diagnostic &Diag : R.Report.Aggregate.Diags)
    Found = Found || Diag.Code == ErrorCode::PersistIOFailed;
  EXPECT_TRUE(Found);
}

TEST(DiskCacheTest, RenameFailureDegradesAndLeavesNoEntry) {
  TempDir D("gis-disk");
  FaultInjector::instance().arm("persist-rename");
  RunResult R = runOnce(kSource, D.Path);
  FaultInjector::instance().disarm();
  EXPECT_TRUE(R.Report.Disk.Degraded);
  EXPECT_EQ(R.Report.Disk.WriteFailures, 1u);
  EXPECT_EQ(countEntries(D.Path), 0u); // failed publish is invisible
}

TEST(DiskCacheTest, ReadFailureDegradesButStillCompiles) {
  TempDir D("gis-disk");
  RunResult Cold = runOnce(kSource, D.Path);
  FaultInjector::instance().arm("persist-read");
  RunResult R = runOnce(kSource, D.Path);
  FaultInjector::instance().disarm();
  EXPECT_EQ(R.Report.DiskHits, 0u);
  EXPECT_TRUE(R.Report.Disk.Degraded);
  EXPECT_EQ(R.Report.Disk.ReadFailures, 1u);
  EXPECT_EQ(R.Text, Cold.Text); // recompiled, same schedule
  // The (sound) entry is still on disk for the next, healthy process.
  EXPECT_EQ(countEntries(D.Path), 1u);
}

TEST(DiskCacheTest, UnusableDirectoryDegradesOpenButEngineSurvives) {
  TempDir D("gis-disk");
  std::ofstream(D.Path + "/f") << "x";
  RunResult R = runOnce(kSource, D.Path + "/f/cache");
  EXPECT_TRUE(R.Report.DiskEnabled);
  EXPECT_TRUE(R.Report.Disk.Degraded);
  EXPECT_EQ(R.Report.FunctionsCompiled, 1u);
}

//===----------------------------------------------------------------------===
// Entry validation: every corruption mode quarantines, none crash, none
// serve a wrong hit
//===----------------------------------------------------------------------===

/// Fixture that plants one genuine entry, then lets each test corrupt it.
class CorruptEntryTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = std::make_unique<TempDir>("gis-corrupt");
    Cold = runOnce(kSource, Dir->Path);
    ASSERT_EQ(countEntries(Dir->Path), 1u);
    for (const auto &E : std::filesystem::directory_iterator(Dir->Path))
      if (E.path().extension() == ".gse")
        EntryPath = E.path().string();
    ASSERT_FALSE(EntryPath.empty());
  }

  /// Overwrites the planted entry with \p Bytes, then asserts the restart
  /// contract: no crash, no wrong hit, exactly one quarantine.
  void corruptAndCheck(const std::string &Bytes) {
    {
      std::ofstream Out(EntryPath, std::ios::binary | std::ios::trunc);
      Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    }
    RunResult R = runOnce(kSource, Dir->Path);
    EXPECT_EQ(R.Report.DiskHits, 0u);
    EXPECT_GT(R.Report.Disk.Quarantines, 0u);
    EXPECT_EQ(R.Text, Cold.Text);
    EXPECT_EQ(countQuarantined(Dir->Path), 1u);
  }

  std::string entryBytes() const {
    std::ifstream In(EntryPath, std::ios::binary);
    std::ostringstream SS;
    SS << In.rdbuf();
    return SS.str();
  }

  std::unique_ptr<TempDir> Dir;
  RunResult Cold;
  std::string EntryPath;
};

TEST_F(CorruptEntryTest, ShortFile) { corruptAndCheck("GIS-"); }

TEST_F(CorruptEntryTest, WrongMagic) {
  std::string B = entryBytes();
  B.replace(0, 3, "XXX");
  corruptAndCheck(B);
}

TEST_F(CorruptEntryTest, FlippedPayloadByteFailsChecksum) {
  std::string B = entryBytes();
  B[B.size() - 2] ^= 0x40;
  corruptAndCheck(B);
}

TEST_F(CorruptEntryTest, TruncatedPayload) {
  std::string B = entryBytes();
  corruptAndCheck(B.substr(0, B.size() / 2));
}

TEST_F(CorruptEntryTest, VersionSkewIsAMissNotACrash) {
  // A valid entry stamped with a future format version: deserialization
  // must reject it on the version line alone.
  auto M = compileMiniCOrDie(kSource);
  Function &F = *M->functions()[0];
  PipelineStats Stats;
  Key128 Key = hashKey128("the key does not matter here");
  std::string Skewed = DiskScheduleCache::serializeEntry(
      Key, F, Stats, DiskCacheFormatVersion + 1);
  corruptAndCheck(Skewed);
}

TEST_F(CorruptEntryTest, KeyMismatchIsQuarantined) {
  // A well-formed entry filed under the wrong name (e.g. a collision or a
  // bad copy): the embedded key must veto the hit.
  auto M = compileMiniCOrDie(kSource);
  Function &F = *M->functions()[0];
  PipelineStats Stats;
  Key128 Other = hashKey128("some other function entirely");
  corruptAndCheck(DiskScheduleCache::serializeEntry(Other, F, Stats));
}

//===----------------------------------------------------------------------===
// Serialization round-trip
//===----------------------------------------------------------------------===

TEST(DiskCacheTest, EntrySerializationRoundTrips) {
  auto M = compileMiniCOrDie(kSource);
  Function &F = *M->functions()[0];
  PipelineStats Stats;
  Stats.Global.RegionsScheduled = 3;
  Stats.Global.UsefulMotions = 7;
  Stats.LoopsRotated = 1;
  Stats.PressurePeak[0] = 11;
  Stats.Counters.bump(obs::MotionUseful, 7);
  Key128 Key = hashKey128("round trip");

  std::string Bytes = DiskScheduleCache::serializeEntry(Key, F, Stats);
  auto M2 = compileMiniCOrDie("int main() { return 1; }");
  Function &G = *M2->functions()[0];
  PipelineStats Back;
  ASSERT_TRUE(DiskScheduleCache::deserializeEntry(Bytes, Key, G, Back)
                  .isOk());
  EXPECT_EQ(functionToString(G), functionToString(F));
  EXPECT_EQ(Back.Global.RegionsScheduled, 3u);
  EXPECT_EQ(Back.Global.UsefulMotions, 7u);
  EXPECT_EQ(Back.LoopsRotated, 1u);
  EXPECT_EQ(Back.PressurePeak[0], 11u);
  EXPECT_EQ(Back.Counters.get(obs::MotionUseful), 7u);
}

TEST(DiskCacheTest, EntriesWithDiagnosticsAreNeverPersisted) {
  // Replaying an entry cannot resurrect its diagnostics faithfully, so
  // such results must stay out of the disk tier entirely.
  TempDir D("gis-disk");
  DiskScheduleCache Cache(D.Path);
  ASSERT_TRUE(Cache.open().isOk());
  auto M = compileMiniCOrDie(kSource);
  Function &F = *M->functions()[0];
  PipelineStats Stats;
  Stats.Diags.push_back(Diagnostic{});
  Cache.insert(hashKey128("diag"), F, Stats);
  EXPECT_EQ(Cache.stats().Inserts, 0u);
  EXPECT_EQ(countEntries(D.Path), 0u);
}

//===----------------------------------------------------------------------===
// Concurrency: engines sharing one directory
//===----------------------------------------------------------------------===

TEST(DiskCacheTest, ConcurrentEnginesShareOneDirectorySafely) {
  // Two engines (as two daemon processes would) compile overlapping
  // workloads against the same cache directory: unique temp names plus
  // atomic rename mean last-writer-wins on identical bytes, and nobody
  // ever reads a partial entry.  Run under TSan via the "persist" label.
  TempDir D("gis-disk");
  std::vector<std::string> Sources;
  for (unsigned K = 0; K != 6; ++K)
    Sources.push_back(generateRandomMiniC(500 + K));

  auto Work = [&](unsigned Offset) {
    for (unsigned Round = 0; Round != 2; ++Round)
      for (unsigned K = 0; K != Sources.size(); ++K)
        runOnce(Sources[(K + Offset) % Sources.size()], D.Path);
  };
  std::thread A(Work, 0), B(Work, 3);
  A.join();
  B.join();

  // One entry per *function* (main plus helpers), all sound.
  EXPECT_GE(countEntries(D.Path), Sources.size());
  EXPECT_EQ(countQuarantined(D.Path), 0u);
  // Every entry is sound: a fresh engine hits all of them.
  for (const std::string &S : Sources) {
    RunResult R = runOnce(S, D.Path);
    EXPECT_GT(R.Report.DiskHits, 0u);
    EXPECT_EQ(R.Report.Disk.Quarantines, 0u);
  }
}

} // namespace

//===- tests/interp_test.cpp - Interpreter unit tests ----------------------===//
//
// Executable-semantics checks: arithmetic, memory, control flow, traps,
// builtins, tracing, and an end-to-end run of the paper's minmax loop.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

std::unique_ptr<Module> parse(const char *Text) {
  return parseModuleOrDie(Text);
}

} // namespace

TEST(InterpTest, ArithmeticBasics) {
  auto M = parse(R"(
func f {
B0:
  LI r1 = 6
  LI r2 = 7
  MUL r3 = r1, r2
  AI r4 = r3, -2
  S r5 = r4, r1
  RET r5
}
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->functions()[0]);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  ASSERT_TRUE(R.HasReturnValue);
  EXPECT_EQ(R.ReturnValue, 6 * 7 - 2 - 6);
}

TEST(InterpTest, BitwiseAndShifts) {
  auto M = parse(R"(
func f {
B0:
  LI r1 = 12
  LI r2 = 10
  AND r3 = r1, r2
  OR r4 = r1, r2
  XOR r5 = r1, r2
  SL r6 = r1, 2
  SR r7 = r1, 1
  NEG r8 = r1
  A r9 = r3, r4
  A r9 = r9, r5
  A r9 = r9, r6
  A r9 = r9, r7
  A r9 = r9, r8
  RET r9
}
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->functions()[0]);
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.ReturnValue, (12 & 10) + (12 | 10) + (12 ^ 10) + (12 << 2) +
                               (12 >> 1) + (-12));
}

TEST(InterpTest, DivisionAndRemainder) {
  auto M = parse(R"(
func f {
B0:
  LI r1 = 17
  LI r2 = 5
  DIV r3 = r1, r2
  REM r4 = r1, r2
  MUL r5 = r3, r2
  A r5 = r5, r4
  RET r5
}
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->functions()[0]);
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.ReturnValue, 17);
}

TEST(InterpTest, DivisionByZeroTraps) {
  auto M = parse(R"(
func f {
B0:
  LI r1 = 17
  LI r2 = 0
  DIV r3 = r1, r2
  RET r3
}
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->functions()[0]);
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapReason.find("zero"), std::string::npos);
}

TEST(InterpTest, MemoryAndLoadUpdate) {
  auto M = parse(R"(
func f {
B0:
  LI r1 = 100
  LI r2 = 11
  ST mem[r1 + 4] = r2
  LI r3 = 22
  ST mem[r1 + 8] = r3
  LI r10 = 100
  L r4 = mem[r10 + 4]
  LU r5, r10 = mem[r10 + 8]
  A r6 = r4, r5
  RET r6
}
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->functions()[0]);
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.ReturnValue, 33);
  // LU must have updated the base register.
  EXPECT_EQ(I.reg(Reg::gpr(10)), 108);
}

TEST(InterpTest, StoreUpdate) {
  auto M = parse(R"(
func f {
B0:
  LI r1 = 200
  LI r2 = 5
  STU mem[r1 + 8] = r2
  RET r1
}
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->functions()[0]);
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.ReturnValue, 208);
  EXPECT_EQ(I.loadWord(208), 5);
}

TEST(InterpTest, CompareAndBranches) {
  // Computes max(a, b) with a branch.
  auto M = parse(R"(
func maxf {
B0:
  C cr0 = r1, r2
  BF B2, cr0, gt
B1:
  RET r1
B2:
  RET r2
}
)");
  Interpreter I(*M);
  I.setReg(Reg::gpr(1), 10);
  I.setReg(Reg::gpr(2), 3);
  ExecResult R = I.run(*M->functions()[0]);
  EXPECT_EQ(R.ReturnValue, 10);

  Interpreter I2(*M);
  I2.setReg(Reg::gpr(1), 3);
  I2.setReg(Reg::gpr(2), 10);
  ExecResult R2 = I2.run(*M->functions()[0]);
  EXPECT_EQ(R2.ReturnValue, 10);
}

TEST(InterpTest, ConditionBitsEncodeThreeWay) {
  EXPECT_EQ(crCompare(1, 2), CRLt);
  EXPECT_EQ(crCompare(2, 1), CRGt);
  EXPECT_EQ(crCompare(2, 2), CREq);
}

TEST(InterpTest, LoopSumsArray) {
  auto M = parse(R"(
func sum {
B0:
  LI r1 = 1000      ; base
  LI r2 = 0         ; i
  LI r3 = 0         ; acc
  LI r4 = 10        ; n
B1:
  SL r5 = r2, 2
  A r6 = r1, r5
  L r7 = mem[r6 + 0]
  A r3 = r3, r7
  AI r2 = r2, 1
  C cr0 = r2, r4
  BT B1, cr0, lt
B2:
  RET r3
}
)");
  Interpreter I(*M);
  for (int K = 0; K != 10; ++K)
    I.storeWord(1000 + 4 * K, K + 1);
  ExecResult R = I.run(*M->functions()[0]);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.ReturnValue, 55);
  // Block counts: loop body executed 10 times.
  EXPECT_EQ(I.blockCounts()[1], 10u);
  EXPECT_EQ(I.blockCounts()[0], 1u);
  EXPECT_EQ(I.blockCounts()[2], 1u);
}

TEST(InterpTest, PrintBuiltinRecordsValues) {
  auto M = parse(R"(
func f {
B0:
  LI r1 = 41
  AI r2 = r1, 1
  CALL print(r2)
  CALL print(r1)
  RET
}
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->functions()[0]);
  ASSERT_FALSE(R.Trapped);
  ASSERT_EQ(R.Printed.size(), 2u);
  EXPECT_EQ(R.Printed[0], 42);
  EXPECT_EQ(R.Printed[1], 41);
}

TEST(InterpTest, CustomBuiltin) {
  auto M = parse(R"(
func f {
B0:
  LI r1 = 5
  CALL r2 = twice(r1)
  RET r2
}
)");
  Interpreter I(*M);
  I.registerBuiltin("twice", [](const std::vector<int64_t> &Args) {
    return Args.at(0) * 2;
  });
  ExecResult R = I.run(*M->functions()[0]);
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.ReturnValue, 10);
}

TEST(InterpTest, UnknownCalleeTraps) {
  auto M = parse(R"(
func f {
B0:
  CALL mystery()
  RET
}
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->functions()[0]);
  EXPECT_TRUE(R.Trapped);
}

TEST(InterpTest, StepBudgetTraps) {
  auto M = parse(R"(
func f {
B0:
  B B0
}
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->functions()[0], 1000);
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapReason.find("budget"), std::string::npos);
}

TEST(InterpTest, TraceRecordsDynamicOrder) {
  auto M = parse(R"(
func f {
B0:
  LI r1 = 2
  CI cr0 = r1, 5
  BT B2, cr0, lt
B1:
  NOP
B2:
  RET r1
}
)");
  Interpreter I(*M);
  I.enableTrace(true);
  ExecResult R = I.run(*M->functions()[0]);
  ASSERT_FALSE(R.Trapped);
  // LI, CI, BT (taken), RET — B1's NOP skipped.
  ASSERT_EQ(I.trace().size(), 4u);
  const Function &F = *M->functions()[0];
  EXPECT_EQ(F.instr(I.trace()[0].Instr).opcode(), Opcode::LI);
  EXPECT_EQ(F.instr(I.trace()[3].Instr).opcode(), Opcode::RET);
  EXPECT_EQ(I.trace()[0].Fn, &F);
}

TEST(InterpTest, FloatingPoint) {
  auto M = parse(R"(
func f {
B0:
  LI r1 = 300
  LI r2 = 3
  ST mem[r1 + 0] = r2
  LI r3 = 4
  ST mem[r1 + 4] = r3
  LF f1 = mem[r1 + 0]
  LF f2 = mem[r1 + 4]
  FM f3 = f1, f2
  FA f4 = f3, f1
  STF mem[r1 + 8] = f4
  L r4 = mem[r1 + 8]
  RET r4
}
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->functions()[0]);
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.ReturnValue, 3 * 4 + 3);
}

// End-to-end: the paper's Figure 2 loop over real data.
TEST(InterpTest, MinmaxFigure2) {
  auto M = parse(R"(
func minmax {
BL0:
  LI r31 = 1000     ; &a[0]; the loop reads a[i] at r31 + 4
  L r28 = mem[r31 + 0]  ; min = a[0]
  LR r30 = r28          ; max = a[0]
  LI r29 = 1            ; i = 1
  C cr4 = r29, r27      ; i < n
  BF BL11, cr4, lt
BL1:
  L r12 = mem[r31 + 4]
  LU r0, r31 = mem[r31 + 8]
  C cr7 = r12, r0
  BF BL6, cr7, gt
BL2:
  C cr6 = r12, r30
  BF BL4, cr6, gt
BL3:
  LR r30 = r12
BL4:
  C cr7 = r0, r28
  BF BL10, cr7, lt
BL5:
  LR r28 = r0
  B BL10
BL6:
  C cr6 = r0, r30
  BF BL8, cr6, gt
BL7:
  LR r30 = r0
BL8:
  C cr7 = r12, r28
  BF BL10, cr7, lt
BL9:
  LR r28 = r12
BL10:
  AI r29 = r29, 2
  C cr4 = r29, r27
  BT BL1, cr4, lt
BL11:
  CALL print(r28)
  CALL print(r30)
  RET
}
)");
  const Function &F = *M->functions()[0];

  Interpreter I(*M);
  // a = {5, 3, 9, -2, 7, 7, 0, 100, -50, 6}, n = 10 (n - 1 even so the
  // pairwise loop covers the whole array).
  int64_t A[] = {5, 3, 9, -2, 7, 7, 0, 100, -50, 6};
  // a[k] lives at 1000 + 4*k; the loop reads a[i] at r31 + 4 with r31
  // starting at &a[0] and advancing by 8 per pairwise iteration.
  for (int K = 0; K != 10; ++K)
    I.storeWord(1000 + 4 * K, A[K]);
  I.setReg(Reg::gpr(27), 9); // n - 1: loop while i < 9
  ExecResult R = I.run(F);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  ASSERT_EQ(R.Printed.size(), 2u);
  EXPECT_EQ(R.Printed[0], -50); // min
  EXPECT_EQ(R.Printed[1], 100); // max
}

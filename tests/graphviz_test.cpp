//===- tests/graphviz_test.cpp - DOT rendering tests ------------------------===//

#include "analysis/GraphViz.h"
#include "analysis/LoopInfo.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

const char *Diamond = R"(
func f {
ENTRY:
  C cr0 = r1, r2
  BF ELSE_, cr0, gt
THEN_:
  LI r3 = 1
  B JOIN
ELSE_:
  LI r3 = 2
JOIN:
  RET r3
}
)";

/// Counts occurrences of \p Needle in \p Hay.
unsigned countOf(const std::string &Hay, const std::string &Needle) {
  unsigned N = 0;
  for (size_t Pos = Hay.find(Needle); Pos != std::string::npos;
       Pos = Hay.find(Needle, Pos + 1))
    ++N;
  return N;
}

} // namespace

TEST(GraphVizTest, CFGDotStructure) {
  auto M = parseModuleOrDie(Diamond);
  std::string Dot = cfgToDot(*M->functions()[0]);
  EXPECT_NE(Dot.find("digraph cfg"), std::string::npos);
  // Four labelled nodes, four edges (2 from ENTRY, 1 each from the arms).
  EXPECT_NE(Dot.find("ENTRY"), std::string::npos);
  EXPECT_NE(Dot.find("JOIN"), std::string::npos);
  EXPECT_EQ(countOf(Dot, "->"), 4u);
  EXPECT_NE(Dot.find("taken"), std::string::npos);
  EXPECT_NE(Dot.find("fall"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(countOf(Dot, "{"), countOf(Dot, "}"));
}

TEST(GraphVizTest, CSPDGDotHasEquivalenceEdges) {
  auto M = parseModuleOrDie(Diamond);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  PDG P = PDG::build(F, R, MachineDescription::rs6k());
  std::string Dot = cspdgToDot(F, P);
  EXPECT_NE(Dot.find("digraph cspdg"), std::string::npos);
  // The arms are control dependent on ENTRY: two solid edges at least.
  EXPECT_GE(countOf(Dot, "->"), 2u);
  // ENTRY and JOIN are equivalent: one dashed edge.
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos);
  EXPECT_EQ(countOf(Dot, "{"), countOf(Dot, "}"));
}

TEST(GraphVizTest, DDGDotClustersAndEdges) {
  auto M = parseModuleOrDie(Diamond);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  PDG P = PDG::build(F, R, MachineDescription::rs6k());
  std::string Dot = ddgToDot(F, P);
  EXPECT_NE(Dot.find("digraph ddg"), std::string::npos);
  // One cluster per block.
  EXPECT_EQ(countOf(Dot, "subgraph cluster_"), 4u);
  // The compare -> branch flow edge with its 3-cycle delay is labelled.
  EXPECT_NE(Dot.find("flow/3"), std::string::npos);
  EXPECT_EQ(countOf(Dot, "{"), countOf(Dot, "}"));
}

TEST(GraphVizTest, LabelsAreEscaped) {
  // Instruction text contains no quotes today, but comments could; make
  // sure a label with special characters survives.
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 1 ; say "hi" \ there
  RET r1
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  PDG P = PDG::build(F, R, MachineDescription::rs6k());
  std::string Dot = ddgToDot(F, P);
  // The quote inside the comment is escaped.
  EXPECT_NE(Dot.find("\\\"hi\\\""), std::string::npos);
}

TEST(GraphVizTest, BarrierNodesRendered) {
  auto M = parseModuleOrDie(R"(
func f {
PRE:
  LI r1 = 0
LOOP:
  AI r1 = r1, 1
  C cr0 = r1, r9
  BT LOOP, cr0, lt
POST:
  RET r1
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1); // top level: loop collapsed
  PDG P = PDG::build(F, R, MachineDescription::rs6k());
  std::string Dot = ddgToDot(F, P);
  EXPECT_NE(Dot.find("(inner loop barrier)"), std::string::npos);
  std::string CDot = cspdgToDot(F, P);
  EXPECT_NE(CDot.find("loop#0"), std::string::npos);
}

//===- tests/frontend2_test.cpp - Mini-C codegen shape tests ---------------===//
//
// The code-shape guarantees the scheduler relies on: loop inversion
// (bottom tests with compare + branch colocated, the paper's Figure 2
// shape), latch creation for continue, guard behaviour on zero-trip
// loops, and assorted statement corners.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

int64_t runMain(const char *Source, std::vector<int64_t> Args = {},
                std::vector<int64_t> *Printed = nullptr) {
  auto M = compileMiniCOrDie(Source);
  Function *Main = M->findFunction("main");
  EXPECT_NE(Main, nullptr);
  Interpreter I(*M);
  EXPECT_EQ(Main->params().size(), Args.size());
  for (size_t K = 0; K != Args.size(); ++K)
    I.setReg(Main->params()[K], Args[K]);
  ExecResult R = I.run(*Main);
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  if (Printed)
    *Printed = R.Printed;
  return R.ReturnValue;
}

} // namespace

TEST(LoopShapeTest, WhileCompilesToBottomTest) {
  auto M = compileMiniCOrDie(R"(
int main(int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    s = s + i;
    i = i + 1;
  }
  return s;
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  ASSERT_EQ(LI.numLoops(), 1u);
  const Loop &L = LI.loop(0);
  // Single-block loop: body, increment, compare and loop-back branch all
  // live together (the Figure 2 / BL10 shape the D heuristic needs).
  EXPECT_EQ(L.numBlocks(), 1u);
  InstrId Term = F.terminatorOf(L.Header);
  ASSERT_NE(Term, InvalidId);
  EXPECT_EQ(F.instr(Term).opcode(), Opcode::BT);
  // The instruction before the branch is its compare.
  const std::vector<InstrId> &Instrs = F.block(L.Header).instrs();
  ASSERT_GE(Instrs.size(), 2u);
  const Instruction &Cmp = F.instr(Instrs[Instrs.size() - 2]);
  EXPECT_TRUE(Cmp.opcode() == Opcode::C || Cmp.opcode() == Opcode::CI);
}

TEST(LoopShapeTest, ZeroTripLoopGuard) {
  // Loop inversion must not execute the body when the guard fails.
  EXPECT_EQ(runMain(R"(
int main(int n) {
  int s = 100;
  int i = 0;
  while (i < n) {
    s = s + 1;
    i = i + 1;
  }
  return s;
}
)",
                    {0}),
            100);
}

TEST(LoopShapeTest, ConditionWithSideEffectEvaluationCount) {
  // The condition calls a counting helper: inversion evaluates the
  // condition guard-once plus once per iteration -- the same count as the
  // top-test form (n+1 for n iterations).
  std::vector<int64_t> Printed;
  runMain(R"(
int g[1];
int tick(int x) {
  g[0] = g[0] + 1;
  return x;
}
int main() {
  int i = 0;
  while (tick(i) < 3) {
    i = i + 1;
  }
  print(g[0]);
  return i;
}
)",
          {}, &Printed);
  ASSERT_EQ(Printed.size(), 1u);
  EXPECT_EQ(Printed[0], 4); // 3 iterations + the final failing test
}

TEST(LoopShapeTest, ContinueGetsLatchBlock) {
  auto M = compileMiniCOrDie(R"(
int main(int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    i = i + 1;
    if (i % 2 == 0) continue;
    s = s + i;
  }
  return s;
}
)");
  Function &F = *M->functions()[0];
  bool HasLatch = false;
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    HasLatch |= F.block(B).label().rfind("while.latch", 0) == 0;
  EXPECT_TRUE(HasLatch);
  // Semantics: sum of odd numbers 1..n.
  Interpreter I(*M);
  I.setReg(F.params()[0], 10);
  EXPECT_EQ(I.run(F).ReturnValue, 1 + 3 + 5 + 7 + 9);
}

TEST(LoopShapeTest, ForStepBlockHoldsIncrementAndTest) {
  auto M = compileMiniCOrDie(R"(
int main(int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i = i + 1) s = s + 2;
  return s;
}
)");
  Function &F = *M->functions()[0];
  // Find the for.step block: it must contain AI, then compare, then BT.
  bool Checked = false;
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    if (F.block(B).label().rfind("for.step", 0) != 0)
      continue;
    const std::vector<InstrId> &Instrs = F.block(B).instrs();
    ASSERT_EQ(Instrs.size(), 3u);
    EXPECT_EQ(F.instr(Instrs[0]).opcode(), Opcode::AI);
    EXPECT_EQ(F.instr(Instrs[1]).opcode(), Opcode::C);
    EXPECT_EQ(F.instr(Instrs[2]).opcode(), Opcode::BT);
    Checked = true;
  }
  EXPECT_TRUE(Checked);
}

TEST(LoopShapeTest, InfiniteForWithBreak) {
  EXPECT_EQ(runMain(R"(
int main() {
  int i = 0;
  for (;;) {
    i = i + 1;
    if (i >= 7) break;
  }
  return i;
}
)"),
            7);
}

TEST(FrontendCornerTest, NestedLoopsWithBreakAndContinue) {
  EXPECT_EQ(runMain(R"(
int main() {
  int total = 0;
  int i;
  int j;
  for (i = 0; i < 5; i = i + 1) {
    for (j = 0; j < 5; j = j + 1) {
      if (j > i) break;
      if (j == 1) continue;
      total = total + 1;
    }
  }
  return total;
}
)"),
            // i=0: j=0 -> 1; i=1: j=0 (j=1 skipped) -> 1; i>=2: j=0,2..i.
            1 + 1 + 2 + 3 + 4);
}

TEST(FrontendCornerTest, ElseIfChain) {
  const char *Source = R"(
int classify(int x) {
  if (x < 0) return 0 - 1;
  else if (x == 0) return 0;
  else if (x < 10) return 1;
  else return 2;
}
int main(int x) { return classify(x); }
)";
  EXPECT_EQ(runMain(Source, {-5}), -1);
  EXPECT_EQ(runMain(Source, {0}), 0);
  EXPECT_EQ(runMain(Source, {5}), 1);
  EXPECT_EQ(runMain(Source, {50}), 2);
}

TEST(FrontendCornerTest, DeadCodeAfterReturnIsDropped) {
  auto M = compileMiniCOrDie(R"(
int main() {
  return 1;
  print(999);
}
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->findFunction("main"));
  EXPECT_EQ(R.ReturnValue, 1);
  EXPECT_TRUE(R.Printed.empty());
}

TEST(FrontendCornerTest, MissingReturnYieldsZeroish) {
  auto M = compileMiniCOrDie("int main() { int x = 5; }");
  Interpreter I(*M);
  ExecResult R = I.run(*M->findFunction("main"));
  EXPECT_FALSE(R.Trapped);
  EXPECT_FALSE(R.HasReturnValue);
}

TEST(FrontendCornerTest, ScopesShadowing) {
  EXPECT_EQ(runMain(R"(
int main() {
  int x = 1;
  {
    int x = 2;
    { int x = 3; print(x); }
    print(x);
  }
  print(x);
  return x;
}
)",
                    {}, nullptr),
            1);
}

TEST(FrontendCornerTest, BooleanValueOfComplexCondition) {
  EXPECT_EQ(runMain(R"(
int main(int a, int b) {
  int t = (a < b && b < 10) || a == 99;
  return t;
}
)",
                    {3, 7}),
            1);
  EXPECT_EQ(runMain(R"(
int main(int a, int b) {
  int t = (a < b && b < 10) || a == 99;
  return t;
}
)",
                    {3, 77}),
            0);
}

TEST(FrontendCornerTest, WrongArgumentCountTrapsAtRuntime) {
  auto M = compileMiniCOrDie(R"(
int two(int a, int b) { return a + b; }
int main() { return two(1); }
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->findFunction("main"));
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapReason.find("args"), std::string::npos);
}

TEST(FrontendCornerTest, NegativeDivisionTruncatesTowardZero) {
  EXPECT_EQ(runMain("int main() { return -7 / 2; }"), -3);
  EXPECT_EQ(runMain("int main() { return -7 % 2; }"), -1);
}

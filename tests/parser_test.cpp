//===- tests/parser_test.cpp - IR parser/printer round-trip tests ---------===//
//
// The parser accepts exactly what the printer produces; these tests check
// both directions plus diagnostic quality on malformed input.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

const char *MinmaxText = R"(
; The loop of the paper's Figure 2 (minmax), transcribed verbatim.
global a[100]

func minmax {
BL1:
  I1: L r12 = mem[r31 + 4]          ; load u
  I2: LU r0, r31 = mem[r31 + 8]     ; load v and increment index
  I3: C cr7 = r12, r0               ; u > v
  I4: BF BL6, cr7, gt
BL2:
  I5: C cr6 = r12, r30              ; u > max
  I6: BF BL4, cr6, gt
BL3:
  I7: LR r30 = r12                  ; max = u
BL4:
  I8: C cr7 = r0, r28               ; v < min
  I9: BF BL10, cr7, lt
BL5:
  I10: LR r28 = r0                  ; min = v
  I11: B BL10
BL6:
  I12: C cr6 = r0, r30              ; v > max
  I13: BF BL8, cr6, gt
BL7:
  I14: LR r30 = r0                  ; max = v
BL8:
  I15: C cr7 = r12, r28             ; u < min
  I16: BF BL10, cr7, lt
BL9:
  I17: LR r28 = r12                 ; min = u
BL10:
  I18: AI r29 = r29, 2              ; i = i + 2
  I19: C cr4 = r29, r27             ; i < n
  I20: BT BL1, cr4, lt
BL11:
  RET
}
)";

} // namespace

TEST(ParserTest, ParsesMinmaxLoop) {
  ParseResult R = parseModule(MinmaxText);
  ASSERT_TRUE(R.ok()) << R.Error << " at line " << R.Line;
  Module &M = *R.M;
  ASSERT_EQ(M.functions().size(), 1u);
  Function &F = *M.functions()[0];
  EXPECT_EQ(F.name(), "minmax");
  EXPECT_EQ(F.numBlocks(), 11u);
  EXPECT_EQ(F.numInstrs(), 21u);
  EXPECT_TRUE(verifyFunction(F).empty());

  // Branch targets resolved across forward references.
  const BasicBlock &BL1 = F.block(0);
  ASSERT_EQ(BL1.instrs().size(), 4u);
  const Instruction &I4 = F.instr(BL1.instrs()[3]);
  EXPECT_EQ(I4.opcode(), Opcode::BF);
  EXPECT_EQ(F.block(I4.target()).label(), "BL6");
  EXPECT_EQ(I4.cond(), CondBit::GT);

  // Loop back edge.
  const BasicBlock &BL10 = F.block(9);
  const Instruction &I20 = F.instr(BL10.instrs().back());
  EXPECT_EQ(I20.opcode(), Opcode::BT);
  EXPECT_EQ(I20.target(), 0u);

  // Global.
  ASSERT_EQ(M.globals().size(), 1u);
  EXPECT_EQ(M.globals()[0].Name, "a");
  EXPECT_EQ(M.globals()[0].SizeWords, 100);
}

TEST(ParserTest, RoundTripsThroughPrinter) {
  auto M1 = parseModuleOrDie(MinmaxText);
  std::string Printed1 = moduleToString(*M1);
  auto M2 = parseModuleOrDie(Printed1);
  std::string Printed2 = moduleToString(*M2);
  EXPECT_EQ(Printed1, Printed2);
}

TEST(ParserTest, LUPattern) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LU r0, r31 = mem[r31 + 8]
  RET r0
}
)");
  const Function &F = *M->functions()[0];
  const Instruction &I = F.instr(0);
  EXPECT_EQ(I.opcode(), Opcode::LU);
  ASSERT_EQ(I.defs().size(), 2u);
  EXPECT_EQ(I.defs()[0], Reg::gpr(0));
  EXPECT_EQ(I.defs()[1], Reg::gpr(31));
  EXPECT_EQ(I.memBase(), Reg::gpr(31));
  EXPECT_EQ(I.imm(), 8);
}

TEST(ParserTest, NegativeDisplacement) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  L r1 = mem[r2 - 12]
  RET r1
}
)");
  EXPECT_EQ(M->functions()[0]->instr(0).imm(), -12);
}

TEST(ParserTest, StoreOperands) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  ST mem[r2 + 4] = r1
  STU mem[r3 + 8] = r1
  RET
}
)");
  const Function &F = *M->functions()[0];
  const Instruction &St = F.instr(0);
  EXPECT_EQ(St.uses()[0], Reg::gpr(1));   // value
  EXPECT_EQ(St.memBase(), Reg::gpr(2));   // base is last use
  const Instruction &Stu = F.instr(1);
  ASSERT_EQ(Stu.defs().size(), 1u);
  EXPECT_EQ(Stu.defs()[0], Reg::gpr(3));  // base updated
}

TEST(ParserTest, CallForms) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  CALL print(r3)
  CALL r4 = compute(r1, r2)
  CALL nullary()
  RET
}
)");
  const Function &F = *M->functions()[0];
  EXPECT_EQ(F.instr(0).callee(), "print");
  EXPECT_EQ(F.instr(0).uses().size(), 1u);
  EXPECT_TRUE(F.instr(0).defs().empty());
  EXPECT_EQ(F.instr(1).callee(), "compute");
  EXPECT_EQ(F.instr(1).uses().size(), 2u);
  ASSERT_EQ(F.instr(1).defs().size(), 1u);
  EXPECT_EQ(F.instr(1).defs()[0], Reg::gpr(4));
  EXPECT_TRUE(F.instr(2).uses().empty());
}

TEST(ParserTest, CommentsBecomeInstructionComments) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 7 ; the answer, halved
  RET r1
}
)");
  EXPECT_EQ(M->functions()[0]->instr(0).comment(), "the answer, halved");
}

TEST(ParserTest, InstructionTagBecomesComment) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  I99: LI r1 = 7
  RET r1
}
)");
  EXPECT_EQ(M->functions()[0]->instr(0).comment(), "I99");
}

TEST(ParserTest, RejectsUnknownMnemonic) {
  ParseResult R = parseModule("func f {\nB0:\n  FROB r1 = r2\n}\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("FROB"), std::string::npos);
  EXPECT_EQ(R.Line, 3);
}

TEST(ParserTest, RejectsUnknownBranchTarget) {
  ParseResult R = parseModule("func f {\nB0:\n  B NOWHERE\n}\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("NOWHERE"), std::string::npos);
}

TEST(ParserTest, RejectsDuplicateLabel) {
  ParseResult R = parseModule("func f {\nB0:\n  NOP\nB0:\n  RET\n}\n");
  EXPECT_FALSE(R.ok());
}

TEST(ParserTest, RejectsInstructionOutsideFunction) {
  ParseResult R = parseModule("LI r1 = 2\n");
  EXPECT_FALSE(R.ok());
}

TEST(ParserTest, RejectsTrailingGarbage) {
  ParseResult R = parseModule("func f {\nB0:\n  LI r1 = 2 extra\n}\n");
  EXPECT_FALSE(R.ok());
}

TEST(ParserTest, RejectsLUWithMismatchedBase) {
  ParseResult R =
      parseModule("func f {\nB0:\n  LU r0, r5 = mem[r31 + 8]\n  RET\n}\n");
  EXPECT_FALSE(R.ok());
}

TEST(ParserTest, MultipleFunctions) {
  auto M = parseModuleOrDie(R"(
func one {
B0:
  RET
}

func two {
B0:
  RET
}
)");
  EXPECT_EQ(M->functions().size(), 2u);
  EXPECT_NE(M->findFunction("one"), nullptr);
  EXPECT_NE(M->findFunction("two"), nullptr);
  EXPECT_EQ(M->findFunction("three"), nullptr);
}

TEST(PrinterTest, InstructionFormats) {
  auto M = parseModuleOrDie(R"(
func f {
B0:
  LI r1 = 42
  AI r2 = r1, -3
  A r3 = r1, r2
  SL r4 = r3, 2
  C cr0 = r1, r2
  BF B1, cr0, eq
B1:
  RET r3
}
)");
  const Function &F = *M->functions()[0];
  EXPECT_EQ(instructionToString(F, 0), "LI r1 = 42");
  EXPECT_EQ(instructionToString(F, 1), "AI r2 = r1, -3");
  EXPECT_EQ(instructionToString(F, 2), "A r3 = r1, r2");
  EXPECT_EQ(instructionToString(F, 3), "SL r4 = r3, 2");
  EXPECT_EQ(instructionToString(F, 4), "C cr0 = r1, r2");
  EXPECT_EQ(instructionToString(F, 5), "BF B1, cr0, eq");
  EXPECT_EQ(instructionToString(F, 6), "RET r3");
}

TEST(ParserTest, FunctionParameterList) {
  auto M = parseModuleOrDie(R"(
func f(r0, r1) {
B0:
  A r2 = r0, r1
  RET r2
}
)");
  const Function &F = *M->functions()[0];
  ASSERT_EQ(F.params().size(), 2u);
  EXPECT_EQ(F.params()[0], Reg::gpr(0));
  EXPECT_EQ(F.params()[1], Reg::gpr(1));
}

TEST(ParserTest, ParamsRoundTripThroughPrinter) {
  auto M = parseModuleOrDie(R"(
func f(r3, f1, r7) {
B0:
  RET r3
}
)");
  std::string Printed = moduleToString(*M);
  EXPECT_NE(Printed.find("func f(r3, f1, r7)"), std::string::npos);
  auto M2 = parseModuleOrDie(Printed);
  EXPECT_EQ(M2->functions()[0]->params().size(), 3u);
  EXPECT_EQ(M2->functions()[0]->params()[1], Reg::fpr(1));
}

TEST(ParserTest, RejectsMalformedParameterList) {
  EXPECT_FALSE(parseModule("func f(r0, {\nB0:\n  RET\n}\n").ok());
  EXPECT_FALSE(parseModule("func f(bogus) {\nB0:\n  RET\n}\n").ok());
}

TEST(ParserTest, FuzzedInputNeverCrashes) {
  // Mutate a valid program in many small ways: every mutation must either
  // parse or produce a diagnostic -- never crash or hang.
  const std::string Base = R"(
global a[16]
func f(r9) {
B0:
  L r1 = mem[r9 + 4]
  C cr0 = r1, r9
  BF B1, cr0, gt
B1:
  CALL print(r1)
  RET r1
}
)";
  RNG R(0xF022);
  unsigned Parsed = 0, Rejected = 0;
  for (int K = 0; K != 400; ++K) {
    std::string S = Base;
    unsigned Edits = 1 + static_cast<unsigned>(R.nextBelow(4));
    for (unsigned E = 0; E != Edits; ++E) {
      size_t Pos = R.nextBelow(S.size());
      switch (R.nextBelow(3)) {
      case 0:
        S[Pos] = static_cast<char>(R.range(32, 126));
        break;
      case 1:
        S.erase(Pos, 1 + R.nextBelow(3));
        break;
      default:
        S.insert(Pos, 1, static_cast<char>(R.range(32, 126)));
        break;
      }
    }
    ParseResult PR = parseModule(S);
    if (PR.ok())
      ++Parsed;
    else {
      ++Rejected;
      EXPECT_FALSE(PR.Error.empty());
      EXPECT_GT(PR.Line, 0);
    }
  }
  // Both outcomes occur across 400 mutations.
  EXPECT_GT(Rejected, 0u);
  EXPECT_GT(Parsed + Rejected, 0u);
}

//===- tests/coldpath_test.cpp - Incremental fast-path equivalence ---------===//
//
// The contract of the incremental cold path (DESIGN.md section 14) is
// absolute: it must not change a single emitted schedule.  These tests
// enforce it from three directions:
//
//  - a 200-seed fuzz compares the incremental pipeline against
//    --no-incremental bit for bit (printer text and content hash), across
//    scheduling levels, optimizer levels and region parallelism, and
//    checks that every non-coldpath obs counter agrees;
//  - direct property tests pin the incremental liveness delta against a
//    fresh fixpoint after hand-made instruction motions;
//  - deterministic fault injection corrupts the two new delta stages
//    ("liveness-delta", "heur-delta") and asserts the
//    verifier/rollback/self-heal machinery keeps the final program
//    well-formed and behaviourally identical to the unscheduled one.
//
// The round-two machinery (DESIGN.md section 15) gets the same treatment:
// a 200-seed differential fuzz cross-checks every cached memory
// disambiguation answer against a stand-alone solve, another pins the
// block-scoped schedule verifier to the whole-function sweep, verdict and
// diagnostics alike (including seeded-illegal schedules), delta-checkpoint
// rollback
// is checked byte-for-byte against the pre-transaction state, and the
// "disambig-cache" / "ckpt-delta" fault stages mirror the containment
// tests above.
//
// Under -DGIS_SLOWPATH_CHECK=ON the scheduler additionally cross-checks
// every liveness freshen, heuristics refresh and per-cycle ready set
// against full recomputation and fatal-errors on divergence; the fuzz
// here then doubles as the pick-by-pick equivalence harness
// (scripts/check.sh builds this configuration for the "perf-equiv"
// label).
//
// Part of the `gis_coldpath_tests` executable (ctest label "perf-equiv").
//
//===----------------------------------------------------------------------===//

#include "analysis/DisambigCache.h"
#include "analysis/Graph.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemDisambig.h"
#include "analysis/PDG.h"
#include "analysis/Region.h"
#include "engine/ScheduleCache.h"
#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Checkpoint.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "sched/GlobalScheduler.h"
#include "sched/LocalScheduler.h"
#include "sched/Pipeline.h"
#include "sched/PreRenaming.h"
#include "sched/ScheduleVerifier.h"
#include "support/FaultInjection.h"
#include "support/Hashing.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

using namespace gis;

namespace {

/// Zeroes the coldpath.* group of \p C: those counters intentionally
/// differ between the incremental and slow paths (that is what they
/// measure), everything else must agree exactly.
obs::CounterSet withoutColdpath(obs::CounterSet C) {
  for (obs::CounterId Id :
       {obs::ColdArenaBytes, obs::ColdDdgNodes, obs::ColdLivenessDelta,
        obs::ColdLivenessFull, obs::ColdHeurBlockRecomputes,
        obs::ColdFastForwards, obs::ColdDisambigCacheHits,
        obs::ColdDisambigCacheMisses, obs::ColdCkptBytes,
        obs::ColdVerifyBlocksScoped, obs::ColdVerifyBlocksTotal})
    C.V[static_cast<unsigned>(Id)] = 0;
  return C;
}

struct Observed {
  bool Trapped = false;
  std::vector<int64_t> Printed;
  int64_t ReturnValue = 0;
};

Observed observe(const Module &M) {
  Observed O;
  Interpreter I(M);
  Function *Main = const_cast<Module &>(M).findFunction("main");
  EXPECT_NE(Main, nullptr);
  ExecResult R = I.run(*Main, 50'000'000);
  O.Trapped = R.Trapped;
  O.Printed = R.Printed;
  O.ReturnValue = R.ReturnValue;
  return O;
}

/// The option matrix one fuzz seed runs under: scheduling level and
/// optimizer level rotate with the seed so the sweep covers -O0/-O2 and
/// useful/speculative without running every combination per seed.
PipelineOptions coldpathOpts(uint64_t Seed) {
  PipelineOptions Opts;
  Opts.Level = (Seed % 2) ? SchedLevel::Speculative : SchedLevel::Useful;
  Opts.Opt.Level = (Seed % 3 == 0) ? 2 : 0;
  Opts.CollectDecisions = true;
  if (Seed % 7 == 0)
    Opts.RegionJobs = 4;
  return Opts;
}

//===----------------------------------------------------------------------===
// 200-seed fuzz: the incremental path is bit-identical to --no-incremental
//===----------------------------------------------------------------------===

TEST(ColdpathEquiv, IncrementalMatchesSlowPathOver200Seeds) {
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    std::string Source = generateRandomMiniC(Seed);
    std::unique_ptr<Module> Fast = compileMiniCOrDie(Source);
    std::unique_ptr<Module> Slow = compileMiniCOrDie(Source);

    PipelineOptions FastOpts = coldpathOpts(Seed);
    PipelineOptions SlowOpts = FastOpts;
    SlowOpts.Incremental = false;

    PipelineStats FS = scheduleModule(*Fast, MachineDescription::rs6k(),
                                      FastOpts);
    PipelineStats SS = scheduleModule(*Slow, MachineDescription::rs6k(),
                                      SlowOpts);

    // Bit-identical output: printer text agrees, and so does the content
    // hash the schedule cache keys on.
    std::string FastText = moduleToString(*Fast);
    std::string SlowText = moduleToString(*Slow);
    ASSERT_EQ(FastText, SlowText) << "seed " << Seed;
    Key128 FH = hashKey128(FastText), SH = hashKey128(SlowText);
    ASSERT_TRUE(FH == SH) << "seed " << Seed;
    ASSERT_TRUE(verifyModule(*Fast).empty()) << "seed " << Seed;

    // Same decisions, same counters -- except the coldpath group, which
    // measures the machinery itself.
    EXPECT_TRUE(withoutColdpath(FS.Counters) == withoutColdpath(SS.Counters))
        << "seed " << Seed;
    EXPECT_EQ(FS.Decisions.size(), SS.Decisions.size()) << "seed " << Seed;
    EXPECT_EQ(FS.Global.UsefulMotions, SS.Global.UsefulMotions)
        << "seed " << Seed;
    EXPECT_EQ(FS.Global.SpeculativeMotions, SS.Global.SpeculativeMotions)
        << "seed " << Seed;
    EXPECT_EQ(FS.Global.Renames, SS.Global.Renames) << "seed " << Seed;
    EXPECT_EQ(FS.VerifierFailures, 0u) << "seed " << Seed;
    EXPECT_EQ(SS.VerifierFailures, 0u) << "seed " << Seed;
  }
}

// The schedule cache shares entries across the toggle (the fingerprint
// deliberately leaves Incremental out, like RegionJobs), which is only
// sound because of the bit-identity the fuzz above establishes.
TEST(ColdpathEquiv, CacheFingerprintIgnoresIncremental) {
  PipelineOptions A, B;
  B.Incremental = false;
  EXPECT_EQ(fingerprintOptions(A), fingerprintOptions(B));
  B.RunLocalScheduler = false; // any real option still splits entries
  EXPECT_NE(fingerprintOptions(A), fingerprintOptions(B));
}

//===----------------------------------------------------------------------===
// Direct property: the liveness delta equals a fresh fixpoint
//===----------------------------------------------------------------------===

// Hand-move instructions between blocks (upward, like the scheduler does)
// and re-solve only the changed blocks; the result must equal a
// from-scratch computation on every seed and after every single motion.
TEST(ColdpathLiveness, RecomputeBlocksMatchesFullCompute) {
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    std::unique_ptr<Module> M = compileMiniCOrDie(generateRandomMiniC(Seed));
    for (const std::unique_ptr<Function> &FP : M->functions()) {
      Function &F = *FP;
      F.recomputeCFG();
      if (F.numBlocks() < 2)
        continue;
      Liveness LV = Liveness::compute(F);

      // Move the first movable (non-terminator) instruction of each block
      // to the end of its layout predecessor, one motion at a time.
      const std::vector<BlockId> &Layout = F.layout();
      for (size_t K = 1; K < Layout.size(); ++K) {
        BlockId From = Layout[K], To = Layout[K - 1];
        std::vector<InstrId> &Src = F.block(From).instrs();
        if (Src.size() < 2)
          continue; // keep the terminator in place
        InstrId Moved = Src.front();
        if (F.instr(Moved).isTerminator())
          continue;
        Src.erase(Src.begin());
        std::vector<InstrId> &Dst = F.block(To).instrs();
        // Insert before To's terminator when it has one.
        size_t Pos = Dst.size();
        if (!Dst.empty() && F.instr(Dst.back()).isTerminator())
          --Pos;
        Dst.insert(Dst.begin() + static_cast<long>(Pos), Moved);

        Liveness::UpdateResult U = LV.recomputeBlocks(F, {From, To});
        Liveness Fresh = Liveness::compute(F);
        ASSERT_TRUE(LV.sameSetsAs(Fresh))
            << "seed " << Seed << " move block " << From << " -> " << To
            << (U.Full ? " (full)" : " (delta)");
      }

      // A no-change delta is a no-op.
      Liveness::UpdateResult U = LV.recomputeBlocks(F, {Layout[0]});
      EXPECT_FALSE(U.Full);
      ASSERT_TRUE(LV.sameSetsAs(Liveness::compute(F))) << "seed " << Seed;
    }
  }
}

//===----------------------------------------------------------------------===
// GIS_SLOWPATH_CHECK: pick-by-pick cross-checking
//===----------------------------------------------------------------------===

// In a -DGIS_SLOWPATH_CHECK=ON build the scheduler fatal-errors on the
// first divergence between the incremental state and a full recompute, so
// merely completing this sweep is the assertion.  In a normal build the
// hooks are compiled out and the test records itself as skipped.
TEST(ColdpathSlowpathCheck, CrosscheckedSweepCompletes) {
#ifndef GIS_SLOWPATH_CHECK
  GTEST_SKIP() << "built without -DGIS_SLOWPATH_CHECK=ON";
#else
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    std::unique_ptr<Module> M = compileMiniCOrDie(generateRandomMiniC(Seed));
    PipelineOptions Opts = coldpathOpts(Seed);
    PipelineStats Stats = scheduleModule(*M, MachineDescription::rs6k(), Opts);
    ASSERT_TRUE(verifyModule(*M).empty()) << "seed " << Seed;
    EXPECT_EQ(Stats.VerifierFailures, 0u) << "seed " << Seed;
  }
#endif
}

//===----------------------------------------------------------------------===
// Fault injection at the delta-update stages
//===----------------------------------------------------------------------===

class ColdpathFaultTest : public ::testing::Test {
protected:
  void TearDown() override { FaultInjector::instance().disarm(); }
};

// "liveness-delta" empties the target block's live-on-exit set right
// after a freshen: the Section 5.3 guard may wave through an illegal
// speculation.  Whatever escapes must be stopped by the semantic
// verifier/oracle and rolled back, and the force-full flag must self-heal
// the analysis -- so every run, faulted or not, ends with well-formed IR
// and unchanged behaviour.
TEST_F(ColdpathFaultTest, LivenessDeltaCorruptionNeverEscapes) {
  unsigned Fired = 0;
  for (uint64_t Seed = 1; Seed <= 40 && Fired == 0; ++Seed) {
    std::string Source = generateRandomMiniC(Seed);
    std::unique_ptr<Module> Base = compileMiniCOrDie(Source);
    std::unique_ptr<Module> Sched = compileMiniCOrDie(Source);

    PipelineOptions Opts;
    Opts.Level = SchedLevel::Speculative;
    Opts.EnableOracle = true; // differential execution inside the pipeline
    Opts.OracleMaxSteps = 200'000;
    FaultInjector::instance().arm("liveness-delta");
    scheduleModule(*Sched, MachineDescription::rs6k(), Opts);
    Fired += FaultInjector::instance().firedCount();
    FaultInjector::instance().disarm();

    ASSERT_TRUE(verifyModule(*Sched).empty()) << "seed " << Seed;
    Observed A = observe(*Base);
    if (A.Trapped)
      continue; // step-budget long-runner; oracle covered it in-pipeline
    Observed B = observe(*Sched);
    ASSERT_FALSE(B.Trapped) << "seed " << Seed;
    EXPECT_EQ(A.Printed, B.Printed) << "seed " << Seed;
    EXPECT_EQ(A.ReturnValue, B.ReturnValue) << "seed " << Seed;
  }
  // The stage must be reachable in the seed range (speculative picks with
  // live-on-exit checks happen on many of these programs).
  EXPECT_GE(Fired, 1u) << "liveness-delta fault never fired";
}

// "heur-delta" zeroes D/CP after a refresh: a priority-only corruption.
// The resulting schedule may differ from the clean one but stays legal,
// so no verifier may fire and behaviour is preserved -- the oracle-clean
// robustness property of the priority heuristics.
TEST_F(ColdpathFaultTest, HeurDeltaCorruptionKeepsScheduleLegal) {
  unsigned Fired = 0;
  for (uint64_t Seed = 1; Seed <= 20 && Fired == 0; ++Seed) {
    std::string Source = generateRandomMiniC(Seed);
    std::unique_ptr<Module> Base = compileMiniCOrDie(Source);
    std::unique_ptr<Module> Sched = compileMiniCOrDie(Source);

    PipelineOptions Opts;
    Opts.Level = SchedLevel::Speculative;
    Opts.EnableOracle = true;
    Opts.OracleMaxSteps = 200'000;
    FaultInjector::instance().arm("heur-delta");
    PipelineStats Stats =
        scheduleModule(*Sched, MachineDescription::rs6k(), Opts);
    Fired += FaultInjector::instance().firedCount();
    FaultInjector::instance().disarm();

    ASSERT_TRUE(verifyModule(*Sched).empty()) << "seed " << Seed;
    if (FaultInjector::instance().firedCount() > 0 || Fired > 0) {
      EXPECT_EQ(Stats.OracleMismatches, 0u) << "seed " << Seed;
      EXPECT_EQ(Stats.VerifierFailures, 0u) << "seed " << Seed;
    }
    Observed A = observe(*Base);
    if (A.Trapped)
      continue;
    Observed B = observe(*Sched);
    ASSERT_FALSE(B.Trapped) << "seed " << Seed;
    EXPECT_EQ(A.Printed, B.Printed) << "seed " << Seed;
    EXPECT_EQ(A.ReturnValue, B.ReturnValue) << "seed " << Seed;
  }
  EXPECT_GE(Fired, 1u) << "heur-delta fault never fired";
}

//===----------------------------------------------------------------------===
// Cached memory disambiguation: every cached answer equals a fresh solve
//===----------------------------------------------------------------------===

/// The region's real blocks in topological order (the block set a region
/// transaction may touch).
std::vector<BlockId> regionRealBlocks(const SchedRegion &R) {
  std::vector<BlockId> Blocks;
  for (unsigned N : R.topoOrder())
    if (R.node(N).isBlock())
      Blocks.push_back(R.node(N).Block);
  return Blocks;
}

/// The loop regions of \p LI plus the top-level region id.
std::vector<int> allRegionIds(const LoopInfo &LI) {
  std::vector<int> Ids;
  for (unsigned L = 0; L != LI.numLoops(); ++L)
    Ids.push_back(static_cast<int>(L));
  Ids.push_back(-1);
  return Ids;
}

/// Memory-touching instructions of the region, capped: the pairwise
/// comparison below is quadratic.
std::vector<InstrId> regionMemInstrs(const Function &F, const SchedRegion &R,
                                     size_t Cap) {
  std::vector<InstrId> Mem;
  for (BlockId B : regionRealBlocks(R))
    for (InstrId Id : F.block(B).instrs())
      if (F.instr(Id).touchesMemory() && Mem.size() < Cap)
        Mem.push_back(Id);
  return Mem;
}

/// Asserts that the cache-backed disambiguator and reachability closure
/// agree with stand-alone solves on the current function state.
void expectDisambigAgrees(const Function &F, const SchedRegion &R,
                          DisambigCache &Cache, const std::string &Tag) {
  MemDisambiguator Cached(F, R, &Cache);
  MemDisambiguator Fresh(F, R, nullptr);
  std::vector<InstrId> Mem = regionMemInstrs(F, R, 24);
  for (size_t I = 0; I < Mem.size(); ++I)
    for (size_t J = I + 1; J < Mem.size(); ++J)
      ASSERT_EQ(Cached.provablyDisjoint(Mem[I], Mem[J]),
                Fresh.provablyDisjoint(Mem[I], Mem[J]))
          << Tag << " pair " << Mem[I] << "," << Mem[J];

  std::shared_ptr<const std::vector<BitSet>> CR =
      Cache.reachability(R.forwardGraph());
  std::vector<BitSet> FR = allPairsReachability(R.forwardGraph());
  ASSERT_EQ(CR->size(), FR.size()) << Tag;
  for (size_t N = 0; N != FR.size(); ++N)
    ASSERT_TRUE((*CR)[N] == FR[N]) << Tag << " node " << N;
}

// Differential property over the random corpus: a DisambigCache shared
// across all regions of a function (the pipeline's usage) never changes a
// provablyDisjoint answer or a reachability bit, before or after code
// motion.  Both invalidation paths are exercised: an intra-block reorder
// repaired with notePosChanged, and a cross-block move repaired with a
// full epoch bump (noteFunctionChanged).
TEST(ColdpathDisambig, CachedAnswersMatchFreshSolveOver200Seeds) {
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    std::unique_ptr<Module> M = compileMiniCOrDie(generateRandomMiniC(Seed));
    for (const std::unique_ptr<Function> &FP : M->functions()) {
      Function &F = *FP;
      F.recomputeCFG();
      LoopInfo LI = LoopInfo::compute(F);
      if (!LI.isReducible())
        continue;
      std::string Tag = "seed " + std::to_string(Seed);

      DisambigCache Cache;
      for (int Id : allRegionIds(LI))
        expectDisambigAgrees(F, SchedRegion::build(F, LI, Id), Cache, Tag);

      // Intra-block reorder: rotate the first block with two or more
      // non-terminator instructions, then patch positions in place.
      for (BlockId B : F.layout()) {
        std::vector<InstrId> &List = F.block(B).instrs();
        size_t Last = List.size();
        if (Last && F.instr(List.back()).isTerminator())
          --Last;
        if (Last < 2)
          continue;
        std::rotate(List.begin(), List.begin() + 1,
                    List.begin() + static_cast<long>(Last));
        Cache.notePosChanged(F, B);
        break;
      }
      for (int Id : allRegionIds(LI))
        expectDisambigAgrees(F, SchedRegion::build(F, LI, Id), Cache,
                             Tag + " after reorder");

      // Cross-block motion (upward, like the scheduler): BlockOf and the
      // single-def map go stale, so only the epoch bump recovers.
      const std::vector<BlockId> &Layout = F.layout();
      bool Moved = false;
      for (size_t K = 1; K < Layout.size() && !Moved; ++K) {
        std::vector<InstrId> &Src = F.block(Layout[K]).instrs();
        if (Src.size() < 2 || F.instr(Src.front()).isTerminator())
          continue;
        InstrId Inst = Src.front();
        Src.erase(Src.begin());
        std::vector<InstrId> &Dst = F.block(Layout[K - 1]).instrs();
        size_t Pos = Dst.size();
        if (!Dst.empty() && F.instr(Dst.back()).isTerminator())
          --Pos;
        Dst.insert(Dst.begin() + static_cast<long>(Pos), Inst);
        Moved = true;
      }
      if (!Moved)
        continue;
      Cache.noteFunctionChanged();
      for (int Id : allRegionIds(LI))
        expectDisambigAgrees(F, SchedRegion::build(F, LI, Id), Cache,
                             Tag + " after move");
    }
  }
}

//===----------------------------------------------------------------------===
// Block-scoped verification: verdicts identical to the whole-function sweep
//===----------------------------------------------------------------------===

// Runs the real global scheduler region by region and verifies every pass
// twice -- full sweep from a deep Before copy, scoped sweep from the
// capture + region snapshot the pipeline keeps -- and demands identical
// problem lists.  Every third seed additionally corrupts the scheduled
// region so the reject path (including diagnostic text) is compared, not
// just clean accepts.
TEST(ColdpathScopedVerify, VerdictsMatchFullVerifierOver200Seeds) {
  const MachineDescription MD = MachineDescription::rs6k();
  unsigned Corrupted = 0, Rejected = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    std::unique_ptr<Module> M = compileMiniCOrDie(generateRandomMiniC(Seed));
    for (const std::unique_ptr<Function> &FP : M->functions()) {
      Function &F = *FP;
      F.recomputeCFG();
      F.renumberOriginalOrder();
      LoopInfo LI = LoopInfo::compute(F);
      if (!LI.isReducible())
        continue;

      GlobalSchedOptions GOpts;
      GOpts.Level = (Seed % 2) ? SchedLevel::Speculative : SchedLevel::Useful;
      DisambigCache Cache;
      GOpts.Cache = &Cache;

      for (int Id : allRegionIds(LI)) {
        SchedRegion R = SchedRegion::build(F, LI, Id);
        if (R.numInstrs() > 256)
          continue;
        const Function Before = F;
        ScopedVerifyContext VCtx = ScopedVerifyContext::capture(F, R);
        RegionSnapshot Snap(F, regionRealBlocks(R));
        Cache.noteFunctionChanged(); // same discipline as a region wave

        GlobalScheduler GS(MD, GOpts);
        Status S;
        PDG P;
        GS.scheduleRegion(F, R, &S, nullptr, {}, &P);
        if (!S.isOk()) {
          F = Before;
          continue;
        }
        if (Seed % 3 == 0 && corruptRegionForTest(F, Snap.blocks()))
          ++Corrupted;

        std::vector<std::string> Full = verifyRegionSchedule(Before, F, R, MD);
        ScopedVerifyStats VS;
        std::vector<std::string> Scoped =
            verifyRegionScheduleScoped(VCtx, Snap, F, R, MD, P, &VS);
        ASSERT_EQ(Full, Scoped)
            << "seed " << Seed << " region " << Id << " of " << F.name();
        EXPECT_LE(VS.BlocksVerified, VS.BlocksTotal);
        if (!Full.empty())
          ++Rejected;
        F = Before; // next region starts from the unscheduled function
      }
    }
  }
  // The reject path must actually have been compared.
  EXPECT_GE(Corrupted, 1u);
  EXPECT_GE(Rejected, 1u);
}

//===----------------------------------------------------------------------===
// Delta checkpoints: rollback restores the pre-transaction bytes
//===----------------------------------------------------------------------===

// Direct unit property: run the two delta-checkpointed serial transforms
// (pre-renaming, local scheduling) under one DeltaCheckpoint, roll back,
// and compare against a deep pre-transaction copy -- field identity,
// printer text and content hash.
TEST(ColdpathCheckpoint, DeltaRestoreIsByteIdenticalToPreTransaction) {
  for (uint64_t Seed : {2u, 5u, 9u, 14u}) {
    std::unique_ptr<Module> M = compileMiniCOrDie(generateRandomMiniC(Seed));
    for (const std::unique_ptr<Function> &FP : M->functions()) {
      Function &F = *FP;
      F.recomputeCFG();
      const Function Ref = F;
      const std::string RefText = functionToString(F);

      DeltaCheckpoint Ck(F);
      preRenameLocals(F, &Ck);
      scheduleLocal(F, MachineDescription::rs6k(), {}, /*Incremental=*/true,
                    /*Cache=*/nullptr, &Ck);
      ASSERT_TRUE(Ck.restore(F)) << "seed " << Seed << " " << F.name();

      EXPECT_TRUE(functionsIdentical(F, Ref))
          << "seed " << Seed << " " << F.name();
      const std::string Text = functionToString(F);
      EXPECT_EQ(Text, RefText) << "seed " << Seed << " " << F.name();
      EXPECT_TRUE(hashKey128(Text) == hashKey128(RefText))
          << "seed " << Seed << " " << F.name();
    }
  }
}

// End to end through the pipeline, at --region-jobs 1 and 4: force the
// delta-checkpointed "local" transaction to roll back in the incremental
// run and the full-snapshot "local" transaction in the --no-incremental
// run.  The full snapshot restores the pre-transaction bytes by
// construction, so byte-identical outputs prove the delta rollback does
// too -- under exactly the region-parallel surroundings the checkpoint
// shares the pipeline with.
TEST_F(ColdpathFaultTest, DeltaRollbackMatchesSnapshotRollbackAcrossJobs) {
  for (unsigned RJ : {1u, 4u}) {
    for (uint64_t Seed : {1u, 4u, 9u, 16u}) {
      std::string Source = generateRandomMiniC(Seed);
      std::unique_ptr<Module> Inc = compileMiniCOrDie(Source);
      std::unique_ptr<Module> Ref = compileMiniCOrDie(Source);

      PipelineOptions IOpts;
      IOpts.Level = SchedLevel::Speculative;
      IOpts.RegionJobs = RJ;
      PipelineOptions ROpts = IOpts;
      ROpts.Incremental = false;

      // The local pass is serial, so the first "local" occurrence is the
      // same transaction in both runs regardless of RegionJobs.
      FaultInjector::instance().arm("local:1");
      PipelineStats IS =
          scheduleModule(*Inc, MachineDescription::rs6k(), IOpts);
      unsigned FiredInc = FaultInjector::instance().firedCount();
      FaultInjector::instance().arm("local:1");
      PipelineStats RS =
          scheduleModule(*Ref, MachineDescription::rs6k(), ROpts);
      unsigned FiredRef = FaultInjector::instance().firedCount();
      FaultInjector::instance().disarm();

      std::string Tag =
          "seed " + std::to_string(Seed) + " rj " + std::to_string(RJ);
      EXPECT_EQ(FiredInc, FiredRef) << Tag;
      EXPECT_EQ(IS.FaultsInjected, RS.FaultsInjected) << Tag;
      if (IS.FaultsInjected) {
        EXPECT_GE(IS.TransformsRolledBack, 1u) << Tag;
        EXPECT_GE(RS.TransformsRolledBack, 1u) << Tag;
      }
      ASSERT_TRUE(verifyModule(*Inc).empty()) << Tag;
      std::string A = moduleToString(*Inc), B = moduleToString(*Ref);
      ASSERT_EQ(A, B) << Tag;
      ASSERT_TRUE(hashKey128(A) == hashKey128(B)) << Tag;
      EXPECT_GE(FiredInc, 1u) << Tag << ": local fault never fired";
    }
  }
}

//===----------------------------------------------------------------------===
// Fault injection at the round-two stages
//===----------------------------------------------------------------------===

// "disambig-cache" flips one provablyDisjoint answer: a fabricated
// independence edge that can admit an illegal motion past the dependence
// builder.  The corrupted fact also poisons the PDG the verifier reuses,
// so containment falls to the in-pipeline differential oracle -- whatever
// escapes must be rolled back, and every run ends with well-formed IR and
// unchanged behaviour.
TEST_F(ColdpathFaultTest, DisambigCacheCorruptionNeverEscapes) {
  unsigned Fired = 0;
  for (uint64_t Seed = 1; Seed <= 40 && Fired == 0; ++Seed) {
    std::string Source = generateRandomMiniC(Seed);
    std::unique_ptr<Module> Base = compileMiniCOrDie(Source);
    std::unique_ptr<Module> Sched = compileMiniCOrDie(Source);

    PipelineOptions Opts;
    Opts.Level = SchedLevel::Speculative;
    Opts.EnableOracle = true; // differential execution inside the pipeline
    Opts.OracleMaxSteps = 200'000;
    FaultInjector::instance().arm("disambig-cache");
    scheduleModule(*Sched, MachineDescription::rs6k(), Opts);
    Fired += FaultInjector::instance().firedCount();
    FaultInjector::instance().disarm();

    ASSERT_TRUE(verifyModule(*Sched).empty()) << "seed " << Seed;
    Observed A = observe(*Base);
    if (A.Trapped)
      continue; // step-budget long-runner; oracle covered it in-pipeline
    Observed B = observe(*Sched);
    ASSERT_FALSE(B.Trapped) << "seed " << Seed;
    EXPECT_EQ(A.Printed, B.Printed) << "seed " << Seed;
    EXPECT_EQ(A.ReturnValue, B.ReturnValue) << "seed " << Seed;
  }
  EXPECT_GE(Fired, 1u) << "disambig-cache fault never fired";
}

// "ckpt-delta" drops a record rollback genuinely needs and then forces
// that rollback: the restore's manifest check must detect the incomplete
// rollback and abort rather than continue from a half-restored function.
// Fail-stop is the containment here, so this is a death test.
TEST_F(ColdpathFaultTest, CkptDeltaLostRecordIsFailStop) {
  EXPECT_DEATH(
      {
        for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
          std::unique_ptr<Module> M =
              compileMiniCOrDie(generateRandomMiniC(Seed));
          // Re-arm per module: a drop attempt can find only redundant
          // records and burn the arming without dying.
          FaultInjector::instance().arm("ckpt-delta");
          PipelineOptions Opts;
          Opts.Level = SchedLevel::Speculative;
          scheduleModule(*M, MachineDescription::rs6k(), Opts);
          FaultInjector::instance().disarm();
        }
      },
      "delta checkpoint integrity check failed");
}

} // namespace

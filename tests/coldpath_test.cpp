//===- tests/coldpath_test.cpp - Incremental fast-path equivalence ---------===//
//
// The contract of the incremental cold path (DESIGN.md section 14) is
// absolute: it must not change a single emitted schedule.  These tests
// enforce it from three directions:
//
//  - a 200-seed fuzz compares the incremental pipeline against
//    --no-incremental bit for bit (printer text and content hash), across
//    scheduling levels, optimizer levels and region parallelism, and
//    checks that every non-coldpath obs counter agrees;
//  - direct property tests pin the incremental liveness delta against a
//    fresh fixpoint after hand-made instruction motions;
//  - deterministic fault injection corrupts the two new delta stages
//    ("liveness-delta", "heur-delta") and asserts the
//    verifier/rollback/self-heal machinery keeps the final program
//    well-formed and behaviourally identical to the unscheduled one.
//
// Under -DGIS_SLOWPATH_CHECK=ON the scheduler additionally cross-checks
// every liveness freshen, heuristics refresh and per-cycle ready set
// against full recomputation and fatal-errors on divergence; the fuzz
// here then doubles as the pick-by-pick equivalence harness
// (scripts/check.sh builds this configuration for the "perf-equiv"
// label).
//
// Part of the `gis_coldpath_tests` executable (ctest label "perf-equiv").
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "engine/ScheduleCache.h"
#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "sched/Pipeline.h"
#include "support/FaultInjection.h"
#include "support/Hashing.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

using namespace gis;

namespace {

/// Zeroes the coldpath.* group of \p C: those counters intentionally
/// differ between the incremental and slow paths (that is what they
/// measure), everything else must agree exactly.
obs::CounterSet withoutColdpath(obs::CounterSet C) {
  for (obs::CounterId Id :
       {obs::ColdArenaBytes, obs::ColdDdgNodes, obs::ColdLivenessDelta,
        obs::ColdLivenessFull, obs::ColdHeurBlockRecomputes,
        obs::ColdFastForwards})
    C.V[static_cast<unsigned>(Id)] = 0;
  return C;
}

struct Observed {
  bool Trapped = false;
  std::vector<int64_t> Printed;
  int64_t ReturnValue = 0;
};

Observed observe(const Module &M) {
  Observed O;
  Interpreter I(M);
  Function *Main = const_cast<Module &>(M).findFunction("main");
  EXPECT_NE(Main, nullptr);
  ExecResult R = I.run(*Main, 50'000'000);
  O.Trapped = R.Trapped;
  O.Printed = R.Printed;
  O.ReturnValue = R.ReturnValue;
  return O;
}

/// The option matrix one fuzz seed runs under: scheduling level and
/// optimizer level rotate with the seed so the sweep covers -O0/-O2 and
/// useful/speculative without running every combination per seed.
PipelineOptions coldpathOpts(uint64_t Seed) {
  PipelineOptions Opts;
  Opts.Level = (Seed % 2) ? SchedLevel::Speculative : SchedLevel::Useful;
  Opts.Opt.Level = (Seed % 3 == 0) ? 2 : 0;
  Opts.CollectDecisions = true;
  if (Seed % 7 == 0)
    Opts.RegionJobs = 4;
  return Opts;
}

//===----------------------------------------------------------------------===
// 200-seed fuzz: the incremental path is bit-identical to --no-incremental
//===----------------------------------------------------------------------===

TEST(ColdpathEquiv, IncrementalMatchesSlowPathOver200Seeds) {
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    std::string Source = generateRandomMiniC(Seed);
    std::unique_ptr<Module> Fast = compileMiniCOrDie(Source);
    std::unique_ptr<Module> Slow = compileMiniCOrDie(Source);

    PipelineOptions FastOpts = coldpathOpts(Seed);
    PipelineOptions SlowOpts = FastOpts;
    SlowOpts.Incremental = false;

    PipelineStats FS = scheduleModule(*Fast, MachineDescription::rs6k(),
                                      FastOpts);
    PipelineStats SS = scheduleModule(*Slow, MachineDescription::rs6k(),
                                      SlowOpts);

    // Bit-identical output: printer text agrees, and so does the content
    // hash the schedule cache keys on.
    std::string FastText = moduleToString(*Fast);
    std::string SlowText = moduleToString(*Slow);
    ASSERT_EQ(FastText, SlowText) << "seed " << Seed;
    Key128 FH = hashKey128(FastText), SH = hashKey128(SlowText);
    ASSERT_TRUE(FH == SH) << "seed " << Seed;
    ASSERT_TRUE(verifyModule(*Fast).empty()) << "seed " << Seed;

    // Same decisions, same counters -- except the coldpath group, which
    // measures the machinery itself.
    EXPECT_TRUE(withoutColdpath(FS.Counters) == withoutColdpath(SS.Counters))
        << "seed " << Seed;
    EXPECT_EQ(FS.Decisions.size(), SS.Decisions.size()) << "seed " << Seed;
    EXPECT_EQ(FS.Global.UsefulMotions, SS.Global.UsefulMotions)
        << "seed " << Seed;
    EXPECT_EQ(FS.Global.SpeculativeMotions, SS.Global.SpeculativeMotions)
        << "seed " << Seed;
    EXPECT_EQ(FS.Global.Renames, SS.Global.Renames) << "seed " << Seed;
    EXPECT_EQ(FS.VerifierFailures, 0u) << "seed " << Seed;
    EXPECT_EQ(SS.VerifierFailures, 0u) << "seed " << Seed;
  }
}

// The schedule cache shares entries across the toggle (the fingerprint
// deliberately leaves Incremental out, like RegionJobs), which is only
// sound because of the bit-identity the fuzz above establishes.
TEST(ColdpathEquiv, CacheFingerprintIgnoresIncremental) {
  PipelineOptions A, B;
  B.Incremental = false;
  EXPECT_EQ(fingerprintOptions(A), fingerprintOptions(B));
  B.RunLocalScheduler = false; // any real option still splits entries
  EXPECT_NE(fingerprintOptions(A), fingerprintOptions(B));
}

//===----------------------------------------------------------------------===
// Direct property: the liveness delta equals a fresh fixpoint
//===----------------------------------------------------------------------===

// Hand-move instructions between blocks (upward, like the scheduler does)
// and re-solve only the changed blocks; the result must equal a
// from-scratch computation on every seed and after every single motion.
TEST(ColdpathLiveness, RecomputeBlocksMatchesFullCompute) {
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    std::unique_ptr<Module> M = compileMiniCOrDie(generateRandomMiniC(Seed));
    for (const std::unique_ptr<Function> &FP : M->functions()) {
      Function &F = *FP;
      F.recomputeCFG();
      if (F.numBlocks() < 2)
        continue;
      Liveness LV = Liveness::compute(F);

      // Move the first movable (non-terminator) instruction of each block
      // to the end of its layout predecessor, one motion at a time.
      const std::vector<BlockId> &Layout = F.layout();
      for (size_t K = 1; K < Layout.size(); ++K) {
        BlockId From = Layout[K], To = Layout[K - 1];
        std::vector<InstrId> &Src = F.block(From).instrs();
        if (Src.size() < 2)
          continue; // keep the terminator in place
        InstrId Moved = Src.front();
        if (F.instr(Moved).isTerminator())
          continue;
        Src.erase(Src.begin());
        std::vector<InstrId> &Dst = F.block(To).instrs();
        // Insert before To's terminator when it has one.
        size_t Pos = Dst.size();
        if (!Dst.empty() && F.instr(Dst.back()).isTerminator())
          --Pos;
        Dst.insert(Dst.begin() + static_cast<long>(Pos), Moved);

        Liveness::UpdateResult U = LV.recomputeBlocks(F, {From, To});
        Liveness Fresh = Liveness::compute(F);
        ASSERT_TRUE(LV.sameSetsAs(Fresh))
            << "seed " << Seed << " move block " << From << " -> " << To
            << (U.Full ? " (full)" : " (delta)");
      }

      // A no-change delta is a no-op.
      Liveness::UpdateResult U = LV.recomputeBlocks(F, {Layout[0]});
      EXPECT_FALSE(U.Full);
      ASSERT_TRUE(LV.sameSetsAs(Liveness::compute(F))) << "seed " << Seed;
    }
  }
}

//===----------------------------------------------------------------------===
// GIS_SLOWPATH_CHECK: pick-by-pick cross-checking
//===----------------------------------------------------------------------===

// In a -DGIS_SLOWPATH_CHECK=ON build the scheduler fatal-errors on the
// first divergence between the incremental state and a full recompute, so
// merely completing this sweep is the assertion.  In a normal build the
// hooks are compiled out and the test records itself as skipped.
TEST(ColdpathSlowpathCheck, CrosscheckedSweepCompletes) {
#ifndef GIS_SLOWPATH_CHECK
  GTEST_SKIP() << "built without -DGIS_SLOWPATH_CHECK=ON";
#else
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    std::unique_ptr<Module> M = compileMiniCOrDie(generateRandomMiniC(Seed));
    PipelineOptions Opts = coldpathOpts(Seed);
    PipelineStats Stats = scheduleModule(*M, MachineDescription::rs6k(), Opts);
    ASSERT_TRUE(verifyModule(*M).empty()) << "seed " << Seed;
    EXPECT_EQ(Stats.VerifierFailures, 0u) << "seed " << Seed;
  }
#endif
}

//===----------------------------------------------------------------------===
// Fault injection at the delta-update stages
//===----------------------------------------------------------------------===

class ColdpathFaultTest : public ::testing::Test {
protected:
  void TearDown() override { FaultInjector::instance().disarm(); }
};

// "liveness-delta" empties the target block's live-on-exit set right
// after a freshen: the Section 5.3 guard may wave through an illegal
// speculation.  Whatever escapes must be stopped by the semantic
// verifier/oracle and rolled back, and the force-full flag must self-heal
// the analysis -- so every run, faulted or not, ends with well-formed IR
// and unchanged behaviour.
TEST_F(ColdpathFaultTest, LivenessDeltaCorruptionNeverEscapes) {
  unsigned Fired = 0;
  for (uint64_t Seed = 1; Seed <= 40 && Fired == 0; ++Seed) {
    std::string Source = generateRandomMiniC(Seed);
    std::unique_ptr<Module> Base = compileMiniCOrDie(Source);
    std::unique_ptr<Module> Sched = compileMiniCOrDie(Source);

    PipelineOptions Opts;
    Opts.Level = SchedLevel::Speculative;
    Opts.EnableOracle = true; // differential execution inside the pipeline
    Opts.OracleMaxSteps = 200'000;
    FaultInjector::instance().arm("liveness-delta");
    scheduleModule(*Sched, MachineDescription::rs6k(), Opts);
    Fired += FaultInjector::instance().firedCount();
    FaultInjector::instance().disarm();

    ASSERT_TRUE(verifyModule(*Sched).empty()) << "seed " << Seed;
    Observed A = observe(*Base);
    if (A.Trapped)
      continue; // step-budget long-runner; oracle covered it in-pipeline
    Observed B = observe(*Sched);
    ASSERT_FALSE(B.Trapped) << "seed " << Seed;
    EXPECT_EQ(A.Printed, B.Printed) << "seed " << Seed;
    EXPECT_EQ(A.ReturnValue, B.ReturnValue) << "seed " << Seed;
  }
  // The stage must be reachable in the seed range (speculative picks with
  // live-on-exit checks happen on many of these programs).
  EXPECT_GE(Fired, 1u) << "liveness-delta fault never fired";
}

// "heur-delta" zeroes D/CP after a refresh: a priority-only corruption.
// The resulting schedule may differ from the clean one but stays legal,
// so no verifier may fire and behaviour is preserved -- the oracle-clean
// robustness property of the priority heuristics.
TEST_F(ColdpathFaultTest, HeurDeltaCorruptionKeepsScheduleLegal) {
  unsigned Fired = 0;
  for (uint64_t Seed = 1; Seed <= 20 && Fired == 0; ++Seed) {
    std::string Source = generateRandomMiniC(Seed);
    std::unique_ptr<Module> Base = compileMiniCOrDie(Source);
    std::unique_ptr<Module> Sched = compileMiniCOrDie(Source);

    PipelineOptions Opts;
    Opts.Level = SchedLevel::Speculative;
    Opts.EnableOracle = true;
    Opts.OracleMaxSteps = 200'000;
    FaultInjector::instance().arm("heur-delta");
    PipelineStats Stats =
        scheduleModule(*Sched, MachineDescription::rs6k(), Opts);
    Fired += FaultInjector::instance().firedCount();
    FaultInjector::instance().disarm();

    ASSERT_TRUE(verifyModule(*Sched).empty()) << "seed " << Seed;
    if (FaultInjector::instance().firedCount() > 0 || Fired > 0) {
      EXPECT_EQ(Stats.OracleMismatches, 0u) << "seed " << Seed;
      EXPECT_EQ(Stats.VerifierFailures, 0u) << "seed " << Seed;
    }
    Observed A = observe(*Base);
    if (A.Trapped)
      continue;
    Observed B = observe(*Sched);
    ASSERT_FALSE(B.Trapped) << "seed " << Seed;
    EXPECT_EQ(A.Printed, B.Printed) << "seed " << Seed;
    EXPECT_EQ(A.ReturnValue, B.ReturnValue) << "seed " << Seed;
  }
  EXPECT_GE(Fired, 1u) << "heur-delta fault never fired";
}

} // namespace

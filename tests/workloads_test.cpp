//===- tests/workloads_test.cpp - Benchmark workload tests -----------------===//
//
// The four SPEC-shaped workloads must compile, verify, run trap-free and
// deterministically, survive the full scheduling pipeline unchanged in
// behaviour, and exhibit the code-shape signatures DESIGN.md assigns them.
//
//===----------------------------------------------------------------------===//

#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "machine/Timing.h"
#include "sched/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

struct RunOutcome {
  std::vector<int64_t> Printed;
  int64_t ReturnValue = 0;
  uint64_t Cycles = 0;
};

RunOutcome runWorkload(const Workload &W, const Module &M) {
  Interpreter I(M);
  I.enableTrace(true);
  if (W.Setup)
    W.Setup(I, M);
  Function *Entry = const_cast<Module &>(M).findFunction(W.EntryFunction);
  EXPECT_NE(Entry, nullptr);
  for (size_t K = 0; K != W.Args.size(); ++K)
    I.setReg(Entry->params()[K], W.Args[K]);
  ExecResult R = I.run(*Entry, W.MaxSteps);
  EXPECT_FALSE(R.Trapped) << W.Name << ": " << R.TrapReason;
  RunOutcome O;
  O.Printed = R.Printed;
  O.ReturnValue = R.ReturnValue;
  TimingSimulator Sim(MachineDescription::rs6k());
  O.Cycles = Sim.simulate(I.trace()).Cycles;
  return O;
}

PipelineStats scheduleFor(Module &M, SchedLevel Level) {
  PipelineOptions Opts;
  Opts.Level = Level;
  if (Level == SchedLevel::None) {
    Opts.EnableUnroll = false;
    Opts.EnableRotate = false;
  }
  return scheduleModule(M, MachineDescription::rs6k(), Opts);
}

} // namespace

class WorkloadTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadTest, CompilesVerifiesAndRuns) {
  const Workload W = specLikeWorkloads()[static_cast<size_t>(GetParam())];
  CompileResult R = compileMiniC(W.Source);
  ASSERT_TRUE(R.ok()) << W.Name << ": " << R.Error;
  EXPECT_TRUE(verifyModule(*R.M).empty());
  RunOutcome O = runWorkload(W, *R.M);
  EXPECT_GT(O.Cycles, 0u);
  EXPECT_FALSE(O.Printed.empty()) << W.Name << " must print something";
}

TEST_P(WorkloadTest, DeterministicAcrossRuns) {
  const Workload W = specLikeWorkloads()[static_cast<size_t>(GetParam())];
  auto M1 = compileMiniCOrDie(W.Source);
  auto M2 = compileMiniCOrDie(W.Source);
  RunOutcome O1 = runWorkload(W, *M1);
  RunOutcome O2 = runWorkload(W, *M2);
  EXPECT_EQ(O1.Printed, O2.Printed);
  EXPECT_EQ(O1.Cycles, O2.Cycles);
}

TEST_P(WorkloadTest, SchedulingPreservesBehaviour) {
  const Workload W = specLikeWorkloads()[static_cast<size_t>(GetParam())];
  auto Base = compileMiniCOrDie(W.Source);
  RunOutcome O0 = runWorkload(W, *Base);
  for (SchedLevel Level : {SchedLevel::Useful, SchedLevel::Speculative}) {
    auto M = compileMiniCOrDie(W.Source);
    scheduleFor(*M, Level);
    ASSERT_TRUE(verifyModule(*M).empty()) << W.Name;
    RunOutcome O = runWorkload(W, *M);
    EXPECT_EQ(O.Printed, O0.Printed) << W.Name;
    EXPECT_EQ(O.ReturnValue, O0.ReturnValue) << W.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadTest, ::testing::Range(0, 4));

//===----------------------------------------------------------------------===
// Shape signatures (the mechanisms DESIGN.md section 2 claims)
//===----------------------------------------------------------------------===

TEST(WorkloadShapeTest, RowOrderMatchesPaper) {
  std::vector<Workload> W = specLikeWorkloads();
  ASSERT_EQ(W.size(), 4u);
  EXPECT_EQ(W[0].Name, "LI");
  EXPECT_EQ(W[1].Name, "EQNTOTT");
  EXPECT_EQ(W[2].Name, "ESPRESSO");
  EXPECT_EQ(W[3].Name, "GCC");
}

TEST(WorkloadShapeTest, LIIsSpeculationBound) {
  const Workload W = specLikeWorkloads()[0];
  auto Base = compileMiniCOrDie(W.Source);
  scheduleFor(*Base, SchedLevel::None);
  auto Useful = compileMiniCOrDie(W.Source);
  scheduleFor(*Useful, SchedLevel::Useful);
  auto Spec = compileMiniCOrDie(W.Source);
  scheduleFor(*Spec, SchedLevel::Speculative);
  uint64_t CB = runWorkload(W, *Base).Cycles;
  uint64_t CU = runWorkload(W, *Useful).Cycles;
  uint64_t CS = runWorkload(W, *Spec).Cycles;
  // Speculation must contribute a large share of the total gain (the
  // paper's LI signature; contrast EqntottIsUsefulBound where the share
  // is ~zero).  Our useful column is inflated relative to the paper's
  // because the paper's base already had the [GR90] loop-closing-delay
  // replication; see EXPERIMENTS.md.
  double SpecShare = double(CU - CS) / double(CB - CS);
  EXPECT_GT(SpecShare, 0.40) << "LI must gain substantially from speculation";
}

TEST(WorkloadShapeTest, EqntottIsUsefulBound) {
  const Workload W = specLikeWorkloads()[1];
  auto Base = compileMiniCOrDie(W.Source);
  scheduleFor(*Base, SchedLevel::None);
  auto Useful = compileMiniCOrDie(W.Source);
  scheduleFor(*Useful, SchedLevel::Useful);
  auto Spec = compileMiniCOrDie(W.Source);
  scheduleFor(*Spec, SchedLevel::Speculative);
  uint64_t CB = runWorkload(W, *Base).Cycles;
  uint64_t CU = runWorkload(W, *Useful).Cycles;
  uint64_t CS = runWorkload(W, *Spec).Cycles;
  EXPECT_LT(CU, CB) << "useful motion must pay off";
  // Speculation adds (almost) nothing on top of useful motion.
  double SpecExtra = double(CU - CS) / double(CB);
  EXPECT_LT(SpecExtra, 0.02) << "EQNTOTT speculation must add ~nothing";
}

TEST(WorkloadShapeTest, EspressoRegionExceedsPaperCaps) {
  const Workload W = specLikeWorkloads()[2];
  auto M = compileMiniCOrDie(W.Source);
  PipelineOptions Opts;
  PipelineStats Stats =
      scheduleModule(*M, MachineDescription::rs6k(), Opts);
  // The hot loop trips the 256-instruction cap: at most stray motions in
  // the cold top-level region, and no cycle change at all.
  EXPECT_GT(Stats.RegionsSkippedBySize, 0u);
  EXPECT_LE(Stats.Global.UsefulMotions + Stats.Global.SpeculativeMotions, 3u);
  auto Base = compileMiniCOrDie(W.Source);
  scheduleFor(*Base, SchedLevel::None);
  EXPECT_EQ(runWorkload(W, *M).Cycles, runWorkload(W, *Base).Cycles);
}

TEST(WorkloadShapeTest, GCCCallsPinTheBlocks) {
  const Workload W = specLikeWorkloads()[3];
  auto Base = compileMiniCOrDie(W.Source);
  auto M = compileMiniCOrDie(W.Source);
  PipelineOptions Opts;
  scheduleModule(*M, MachineDescription::rs6k(), Opts);
  // Every CALL stays in the block it started in.
  auto CallBlocks = [](const Module &Mod) {
    std::vector<std::pair<std::string, std::string>> Out;
    for (const auto &F : Mod.functions())
      for (BlockId B = 0; B != F->numBlocks(); ++B)
        for (InstrId I : F->block(B).instrs())
          if (F->instr(I).isCall())
            Out.emplace_back(F->name(), F->instr(I).callee());
    return Out;
  };
  // Same multiset of (function, callee) pairs; calls never cloned/moved
  // across functions (block identity is not directly comparable after
  // unrolling, but the counts per function are).
  EXPECT_EQ(CallBlocks(*Base).size() * 2 >= CallBlocks(*M).size(), true);
  uint64_t CB = runWorkload(W, *Base).Cycles;
  uint64_t CS = runWorkload(W, *M).Cycles;
  // Near-zero improvement (the calls pin everything hot): the total gain
  // stays a small fraction of what the call-free workloads achieve.
  EXPECT_GT(double(CS) / double(CB), 0.87);
}

//===----------------------------------------------------------------------===
// The exported paper example
//===----------------------------------------------------------------------===

TEST(WorkloadExportsTest, Figure2ModuleVerifiesAndRuns) {
  auto M = minmaxFigure2Module();
  EXPECT_TRUE(verifyModule(*M).empty());
  Interpreter I(*M);
  seedMinmaxData(I, 66, 2);
  ExecResult R = I.run(*M->functions()[0]);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  ASSERT_EQ(R.Printed.size(), 2u);
  EXPECT_LT(R.Printed[0], R.Printed[1]); // min < max
}

TEST(WorkloadExportsTest, Figure1SourceCompilesAndAgreesWithFigure2) {
  auto FromC = compileMiniCOrDie(minmaxFigure1Source());
  Function *F = FromC->findFunction("minmax");
  ASSERT_NE(F, nullptr);

  auto Fig2 = minmaxFigure2Module();

  // Same data, same results, through two completely different paths
  // (frontend codegen vs. the paper's hand-written pseudo-code).
  for (int Updates : {0, 1, 2}) {
    Interpreter I2(*Fig2);
    seedMinmaxData(I2, 66, Updates);
    ExecResult R2 = I2.run(*Fig2->functions()[0]);

    Interpreter I1(*FromC);
    int64_t Base = FromC->globals()[0].Address;
    for (int K = 0; K != 66; ++K)
      I1.storeWord(Base + 4 * K, I2.loadWord(1000 + 4 * K));
    I1.setReg(F->params()[0], 64);
    ExecResult R1 = I1.run(*F);

    ASSERT_FALSE(R1.Trapped) << R1.TrapReason;
    EXPECT_EQ(R1.Printed, R2.Printed) << "updates=" << Updates;
  }
}

TEST(WorkloadExportsTest, SeedMinmaxDataPathsBehaveAsDocumented) {
  // 0 updates: after the first iteration no LR executes; 2 updates: both
  // min and max change every iteration.
  auto M = minmaxFigure2Module();
  for (int Updates : {0, 2}) {
    Interpreter I(*M);
    seedMinmaxData(I, 66, Updates);
    ExecResult R = I.run(*M->functions()[0]);
    ASSERT_FALSE(R.Trapped);
    // Count dynamic LR executions via block counts of the update blocks
    // BL3(3), BL5(5), BL7(7), BL9(9).
    uint64_t Updates_ = I.blockCounts()[3] + I.blockCounts()[5] +
                        I.blockCounts()[7] + I.blockCounts()[9];
    if (Updates == 0)
      EXPECT_LE(Updates_, 2u); // only the settling first iteration
    else
      EXPECT_GT(Updates_, 50u);
  }
}

//===- tests/integration_test.cpp - Whole-toolchain integration ------------===//
//
// End-to-end runs of a realistic multi-function program through every
// stage: mini-C -> IR -> analyses -> full pipeline (with all extensions)
// -> interpreter + timing, across machines, checking behaviour, IR
// well-formedness, determinism and speedups together.
//
//===----------------------------------------------------------------------===//

#include "analysis/GraphViz.h"
#include "analysis/LoopInfo.h"
#include "analysis/RegPressure.h"
#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "machine/Timing.h"
#include "sched/Pipeline.h"
#include "sched/Profile.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

// A small "application": histogram + prefix sums + a checksum walk, with
// helpers, nested loops, branches and arrays -- every frontend feature.
const char *AppSource = R"(
int data[256];
int hist[16];
int prefix[16];

int bucketof(int v) {
  int b = v % 16;
  if (b < 0) b = 0 - b;
  return b;
}

int build_hist(int n) {
  int i;
  for (i = 0; i < 16; i = i + 1) hist[i] = 0;
  for (i = 0; i < n; i = i + 1) {
    int b = bucketof(data[i]);
    hist[b] = hist[b] + 1;
  }
  return 0;
}

int build_prefix() {
  int i;
  int acc = 0;
  for (i = 0; i < 16; i = i + 1) {
    acc = acc + hist[i];
    prefix[i] = acc;
  }
  return acc;
}

int checksum(int n) {
  int i = 0;
  int s = 0;
  while (i < n) {
    int v = data[i];
    if (v > 0) { s = s + v; } else { s = s - v; }
    if (i % 3 == 0 && v % 2 == 0) s = s + 1;
    i = i + 1;
  }
  return s;
}

int main(int n) {
  build_hist(n);
  int total = build_prefix();
  int cs = checksum(n);
  print(total);
  print(cs);
  print(prefix[15]);
  return total * 100000 + cs;
}
)";

struct AppRun {
  std::vector<int64_t> Printed;
  int64_t ReturnValue = 0;
  uint64_t Cycles = 0;
};

AppRun runApp(Module &M, const MachineDescription &MD, int64_t N = 200) {
  AppRun Out;
  Interpreter I(M);
  I.enableTrace(true);
  Function *Main = M.findFunction("main");
  EXPECT_NE(Main, nullptr);
  int64_t Base = M.globals()[0].Address; // data
  for (int K = 0; K != 256; ++K)
    I.storeWord(Base + 4 * K, (K * 37 + 11) % 101 - 50);
  I.setReg(Main->params()[0], N);
  ExecResult R = I.run(*Main);
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  Out.Printed = R.Printed;
  Out.ReturnValue = R.ReturnValue;
  TimingSimulator Sim(MD);
  Out.Cycles = Sim.simulate(I.trace()).Cycles;
  return Out;
}

} // namespace

TEST(IntegrationTest, FullPipelineOnApplication) {
  MachineDescription MD = MachineDescription::rs6k();

  auto Base = compileMiniCOrDie(AppSource);
  AppRun R0 = runApp(*Base, MD);
  // The histogram totals must be self-consistent: total == prefix[15] ==
  // n.
  ASSERT_EQ(R0.Printed.size(), 3u);
  EXPECT_EQ(R0.Printed[0], 200);
  EXPECT_EQ(R0.Printed[2], 200);

  auto Sched = compileMiniCOrDie(AppSource);
  PipelineOptions Opts;
  Opts.AllowDuplication = true;
  PipelineStats Stats = scheduleModule(*Sched, MD, Opts);
  EXPECT_TRUE(verifyModule(*Sched).empty());
  EXPECT_GT(Stats.Global.UsefulMotions + Stats.Global.SpeculativeMotions, 0u);

  AppRun R1 = runApp(*Sched, MD);
  EXPECT_EQ(R0.Printed, R1.Printed);
  EXPECT_EQ(R0.ReturnValue, R1.ReturnValue);
  EXPECT_LT(R1.Cycles, R0.Cycles) << "scheduling must pay off";
}

TEST(IntegrationTest, SchedulingIsDeterministic) {
  auto M1 = compileMiniCOrDie(AppSource);
  auto M2 = compileMiniCOrDie(AppSource);
  PipelineOptions Opts;
  scheduleModule(*M1, MachineDescription::rs6k(), Opts);
  scheduleModule(*M2, MachineDescription::rs6k(), Opts);
  EXPECT_EQ(moduleToString(*M1), moduleToString(*M2));
}

TEST(IntegrationTest, ScheduledIRRoundTripsThroughAssembler) {
  auto M = compileMiniCOrDie(AppSource);
  PipelineOptions Opts;
  scheduleModule(*M, MachineDescription::rs6k(), Opts);
  std::string Text = moduleToString(*M);
  auto Reparsed = parseModuleOrDie(Text);
  EXPECT_EQ(moduleToString(*Reparsed), Text);
  // The reparsed module behaves identically.
  MachineDescription MD = MachineDescription::rs6k();
  AppRun A = runApp(*M, MD);
  AppRun B = runApp(*Reparsed, MD);
  EXPECT_EQ(A.Printed, B.Printed);
  EXPECT_EQ(A.Cycles, B.Cycles);
}

TEST(IntegrationTest, WiderMachinesRunFaster) {
  auto M = compileMiniCOrDie(AppSource);
  PipelineOptions Opts;
  uint64_t Prev = ~uint64_t(0);
  for (unsigned Width : {1u, 2u, 4u}) {
    auto Sched = compileMiniCOrDie(AppSource);
    MachineDescription MD = MachineDescription::superscalar(Width, 1, 2);
    scheduleModule(*Sched, MD, Opts);
    uint64_t Cycles = runApp(*Sched, MD).Cycles;
    EXPECT_LE(Cycles, Prev);
    Prev = Cycles;
  }
}

TEST(IntegrationTest, ProfileGuidedPipelineStaysCorrect) {
  MachineDescription MD = MachineDescription::rs6k();
  auto Base = compileMiniCOrDie(AppSource);
  AppRun R0 = runApp(*Base, MD);

  // Profile main (entry-function block counts).
  ProfileData P;
  {
    auto M = compileMiniCOrDie(AppSource);
    Interpreter I(*M);
    Function *Main = M->findFunction("main");
    int64_t BaseAddr = M->globals()[0].Address;
    for (int K = 0; K != 256; ++K)
      I.storeWord(BaseAddr + 4 * K, (K * 37 + 11) % 101 - 50);
    I.setReg(Main->params()[0], 200);
    I.run(*Main);
    P.record(*Main, I.blockCounts());
  }

  auto Sched = compileMiniCOrDie(AppSource);
  PipelineOptions Opts;
  Opts.Profile = &P;
  scheduleModule(*Sched, MD, Opts);
  AppRun R1 = runApp(*Sched, MD);
  EXPECT_EQ(R0.Printed, R1.Printed);
  EXPECT_LE(R1.Cycles, R0.Cycles);
}

TEST(IntegrationTest, PressureStaysAllocatable) {
  auto M = compileMiniCOrDie(AppSource);
  PipelineOptions Opts;
  scheduleModule(*M, MachineDescription::rs6k(), Opts);
  for (const auto &F : M->functions()) {
    RegPressure P = computeRegPressure(*F);
    // Every function must still fit the RS/6000 register files.
    EXPECT_LE(P.maxLive(RegClass::GPR), 32u) << F->name();
    EXPECT_LE(P.maxLive(RegClass::CR), 8u) << F->name();
  }
}

TEST(IntegrationTest, DotDumpsStayWellFormedAfterScheduling) {
  auto M = compileMiniCOrDie(AppSource);
  PipelineOptions Opts;
  scheduleModule(*M, MachineDescription::rs6k(), Opts);
  for (const auto &F : M->functions()) {
    std::string Dot = cfgToDot(*F);
    EXPECT_NE(Dot.find("digraph"), std::string::npos);
    LoopInfo LI = LoopInfo::compute(*F);
    if (!LI.isReducible())
      continue;
    for (int RId = -1; RId < static_cast<int>(LI.numLoops()); ++RId) {
      SchedRegion R = SchedRegion::build(*F, LI, RId);
      PDG P = PDG::build(*F, R, MachineDescription::rs6k());
      EXPECT_NE(cspdgToDot(*F, P).find("digraph"), std::string::npos);
      EXPECT_NE(ddgToDot(*F, P).find("digraph"), std::string::npos);
    }
  }
}

//===- tests/property_test.cpp - Randomized property tests -----------------===//
//
// Scheduling must preserve semantics on arbitrary programs: the random
// mini-C generator produces terminating, trap-free programs; original and
// scheduled versions must print the same values, return the same result
// and leave identical memory.  Also brute-force checks of the dominator
// implementation on random graphs, parameterized across scheduling
// configurations and machine widths.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"
#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "machine/Timing.h"
#include "sched/Pipeline.h"
#include "support/RNG.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

struct Observed {
  bool Trapped;
  std::vector<int64_t> Printed;
  int64_t ReturnValue;
  std::vector<std::pair<int64_t, int64_t>> Memory;
  uint64_t Cycles;
};

/// Runs `main` of \p M and captures everything observable plus simulated
/// cycles.
Observed observe(const Module &M) {
  Observed O;
  Interpreter I(M);
  I.enableTrace(true);
  Function *Main = const_cast<Module &>(M).findFunction("main");
  EXPECT_NE(Main, nullptr);
  ExecResult R = I.run(*Main);
  O.Trapped = R.Trapped;
  O.Printed = R.Printed;
  O.ReturnValue = R.ReturnValue;
  for (const auto &[Addr, Val] : I.memory())
    if (Val != 0)
      O.Memory.emplace_back(Addr, Val);
  std::sort(O.Memory.begin(), O.Memory.end());
  TimingSimulator Sim(MachineDescription::rs6k());
  O.Cycles = Sim.simulate(I.trace()).Cycles;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===
// Semantics preservation across random programs
//===----------------------------------------------------------------------===

class ScheduleSemanticsTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(ScheduleSemanticsTest, SchedulingPreservesBehaviour) {
  auto [Seed, Config] = GetParam();
  std::string Source = generateRandomMiniC(Seed);
  CompileResult Base = compileMiniC(Source);
  ASSERT_TRUE(Base.ok()) << Base.Error << "\n" << Source;
  CompileResult Sched = compileMiniC(Source);
  ASSERT_TRUE(Sched.ok());

  PipelineOptions Opts;
  switch (Config) {
  case 0:
    Opts.Level = SchedLevel::Useful;
    Opts.EnableUnroll = false;
    Opts.EnableRotate = false;
    break;
  case 1:
    Opts.Level = SchedLevel::Speculative;
    Opts.EnableUnroll = false;
    Opts.EnableRotate = false;
    break;
  case 2: // the paper's full pipeline
    Opts.Level = SchedLevel::Speculative;
    break;
  case 3: // future-work extension: deeper speculation, all region levels
    Opts.Level = SchedLevel::Speculative;
    Opts.MaxSpecDepth = 3;
    Opts.OnlyTwoInnerLevels = false;
    break;
  case 4: // future-work extension: scheduling with duplication
    Opts.Level = SchedLevel::Speculative;
    Opts.AllowDuplication = true;
    break;
  default:
    FAIL();
  }
  scheduleModule(*Sched.M, MachineDescription::rs6k(), Opts);
  ASSERT_TRUE(verifyModule(*Sched.M).empty());

  Observed A = observe(*Base.M);
  Observed B = observe(*Sched.M);
  ASSERT_FALSE(A.Trapped) << Source;
  ASSERT_FALSE(B.Trapped) << Source;
  EXPECT_EQ(A.Printed, B.Printed) << Source;
  EXPECT_EQ(A.ReturnValue, B.ReturnValue) << Source;
  EXPECT_EQ(A.Memory, B.Memory) << Source;
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, ScheduleSemanticsTest,
    ::testing::Combine(::testing::Range<uint64_t>(1, 21),
                       ::testing::Values(0, 1, 2, 3, 4)));

TEST(SchedulePropertyTest, AggregateCyclesDoNotRegress) {
  // Individual programs may occasionally get slower (the heuristics are
  // heuristics), but across many programs scheduling must pay off.
  uint64_t BaseTotal = 0, SchedTotal = 0;
  for (uint64_t Seed = 100; Seed != 120; ++Seed) {
    std::string Source = generateRandomMiniC(Seed);
    CompileResult Base = compileMiniC(Source);
    ASSERT_TRUE(Base.ok()) << Base.Error;
    CompileResult Sched = compileMiniC(Source);
    PipelineOptions Opts;
    scheduleModule(*Sched.M, MachineDescription::rs6k(), Opts);
    BaseTotal += observe(*Base.M).Cycles;
    SchedTotal += observe(*Sched.M).Cycles;
  }
  EXPECT_LE(SchedTotal, BaseTotal);
}

TEST(SchedulePropertyTest, WiderMachinesBenefitMore) {
  // Paper Section 7: "we may expect even bigger payoffs in machines with
  // a larger number of computational units".  Aggregate relative
  // improvement must not shrink when the machine widens.
  double Improvement[2] = {0, 0};
  MachineDescription Narrow = MachineDescription::rs6k();
  MachineDescription Wide = MachineDescription::superscalar(4, 1, 2);
  int Idx = 0;
  for (const MachineDescription &MD : {Narrow, Wide}) {
    uint64_t BaseTotal = 0, SchedTotal = 0;
    for (uint64_t Seed = 200; Seed != 212; ++Seed) {
      std::string Source = generateRandomMiniC(Seed);
      CompileResult Base = compileMiniC(Source);
      ASSERT_TRUE(Base.ok());
      CompileResult Sched = compileMiniC(Source);
      PipelineOptions Opts;
      scheduleModule(*Sched.M, MD, Opts);

      auto CyclesOf = [&](const Module &M) {
        Interpreter I(M);
        I.enableTrace(true);
        I.run(*const_cast<Module &>(M).findFunction("main"));
        TimingSimulator Sim(MD);
        return Sim.simulate(I.trace()).Cycles;
      };
      BaseTotal += CyclesOf(*Base.M);
      SchedTotal += CyclesOf(*Sched.M);
    }
    Improvement[Idx++] =
        1.0 - static_cast<double>(SchedTotal) / static_cast<double>(BaseTotal);
  }
  EXPECT_GE(Improvement[1], Improvement[0] - 0.01);
}

//===----------------------------------------------------------------------===
// Dominators vs. brute force on random graphs
//===----------------------------------------------------------------------===

namespace {

/// Brute-force dominance: A dominates B iff B is unreachable from the
/// entry when A is removed (and both are reachable normally).
bool bruteForceDominates(const DiGraph &G, unsigned A, unsigned B) {
  if (A == B)
    return true;
  // Reachability avoiding A.
  std::vector<uint8_t> Seen(G.NumNodes, 0);
  std::vector<unsigned> Work;
  if (G.Entry != A) {
    Seen[G.Entry] = 1;
    Work.push_back(G.Entry);
  }
  while (!Work.empty()) {
    unsigned N = Work.back();
    Work.pop_back();
    for (unsigned S : G.Succs[N])
      if (S != A && !Seen[S]) {
        Seen[S] = 1;
        Work.push_back(S);
      }
  }
  return !Seen[B];
}

DiGraph randomGraph(uint64_t Seed) {
  RNG R(Seed);
  unsigned N = 3 + static_cast<unsigned>(R.nextBelow(10));
  DiGraph G(N, 0);
  // A spine guarantees some reachability; extra random edges add shape.
  for (unsigned K = 1; K != N; ++K)
    G.addEdge(static_cast<unsigned>(R.nextBelow(K)), K);
  unsigned Extra = static_cast<unsigned>(R.nextBelow(2 * N));
  for (unsigned K = 0; K != Extra; ++K)
    G.addEdge(static_cast<unsigned>(R.nextBelow(N)),
              static_cast<unsigned>(R.nextBelow(N)));
  return G;
}

} // namespace

class DominatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DominatorPropertyTest, MatchesBruteForce) {
  DiGraph G = randomGraph(GetParam());
  DomTree D(G);
  BitSet Reachable = reachableFrom(G, G.Entry);
  for (unsigned A = 0; A != G.NumNodes; ++A)
    for (unsigned B = 0; B != G.NumNodes; ++B) {
      if (!Reachable.test(A) || !Reachable.test(B))
        continue;
      EXPECT_EQ(D.dominates(A, B), bruteForceDominates(G, A, B))
          << "A=" << A << " B=" << B << " seed=" << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DominatorPropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

//===----------------------------------------------------------------------===
// Random-program generator sanity
//===----------------------------------------------------------------------===

TEST(RandomProgramTest, Deterministic) {
  EXPECT_EQ(generateRandomMiniC(7), generateRandomMiniC(7));
  EXPECT_NE(generateRandomMiniC(7), generateRandomMiniC(8));
}

TEST(RandomProgramTest, AllSeedsCompileAndTerminate) {
  for (uint64_t Seed = 300; Seed != 330; ++Seed) {
    std::string Source = generateRandomMiniC(Seed);
    CompileResult R = compileMiniC(Source);
    ASSERT_TRUE(R.ok()) << R.Error << " line " << R.Line << "\n" << Source;
    Interpreter I(*R.M);
    ExecResult E = I.run(*R.M->findFunction("main"), 5'000'000);
    EXPECT_FALSE(E.Trapped) << E.TrapReason << "\n" << Source;
  }
}

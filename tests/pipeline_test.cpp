//===- tests/pipeline_test.cpp - Unroll / rotate / pipeline tests ----------===//
//
// The Section 6 preparation transforms (loop unrolling and rotation) and
// the end-to-end scheduling pipeline.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "machine/Timing.h"
#include "sched/Pipeline.h"
#include "sched/Rotate.h"
#include "sched/Unroll.h"

#include <gtest/gtest.h>

using namespace gis;

namespace {

// A bottom-test counted loop summing an array.
const char *SumLoop = R"(
func sum {
PRE:
  LI r1 = 1000
  LI r3 = 0
  LI r4 = 0
LOOP:
  LU r7, r1 = mem[r1 + 4]
  A r3 = r3, r7
  AI r4 = r4, 1
  C cr0 = r4, r27
  BT LOOP, cr0, lt
POST:
  RET r3
}
)";

// A top-test while loop (header branches to the exit).
const char *WhileLoop = R"(
func whileloop {
PRE:
  LI r1 = 1000
  LI r3 = 0
  LI r4 = 0
HEAD:
  C cr0 = r4, r27
  BF EXIT, cr0, lt
BODY:
  LU r7, r1 = mem[r1 + 4]
  A r3 = r3, r7
  AI r4 = r4, 1
  B HEAD
EXIT:
  RET r3
}
)";

int64_t runSum(const Module &M, int64_t N,
               std::vector<TraceEntry> *TraceOut = nullptr) {
  const Function &F = *M.functions()[0];
  Interpreter I(M);
  I.enableTrace(TraceOut != nullptr);
  for (int K = 1; K <= N + 2; ++K)
    I.storeWord(1000 + 4 * K, K);
  I.setReg(Reg::gpr(27), N);
  ExecResult R = I.run(F);
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_TRUE(R.HasReturnValue);
  if (TraceOut)
    *TraceOut = I.trace();
  return R.ReturnValue;
}

} // namespace

//===----------------------------------------------------------------------===
// Unrolling
//===----------------------------------------------------------------------===

TEST(UnrollTest, SingleBlockLoop) {
  auto M = parseModuleOrDie(SumLoop);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  ASSERT_EQ(LI.numLoops(), 1u);
  ASSERT_TRUE(canUnrollOnce(F, LI, 0));

  unsigned BlocksBefore = F.numBlocks();
  ASSERT_TRUE(unrollLoopOnce(F, LI, 0));
  EXPECT_TRUE(verifyFunction(F).empty());
  EXPECT_EQ(F.numBlocks(), BlocksBefore + 1);

  // The unrolled function now has a two-block loop.
  LoopInfo LI2 = LoopInfo::compute(F);
  ASSERT_EQ(LI2.numLoops(), 1u);
  EXPECT_EQ(LI2.loop(0).numBlocks(), 2u);

  // Semantics: both even and odd iteration counts.
  for (int64_t N : {1, 2, 7, 10}) {
    auto Base = parseModuleOrDie(SumLoop);
    EXPECT_EQ(runSum(*M, N), runSum(*Base, N)) << "N=" << N;
  }
}

TEST(UnrollTest, MultiBlockLoopMinmaxShape) {
  // The minmax loop (10 blocks, conditional latch) is unrollable too.
  const char *Minmax = R"(
func minmax {
BL0:
  LI r31 = 1000
  L r28 = mem[r31 + 0]
  LR r30 = r28
  LI r29 = 1
BL1:
  L r12 = mem[r31 + 4]
  LU r0, r31 = mem[r31 + 8]
  C cr7 = r12, r0
  BF BL6, cr7, gt
BL2:
  C cr6 = r12, r30
  BF BL4, cr6, gt
BL3:
  LR r30 = r12
BL4:
  C cr7 = r0, r28
  BF BL10, cr7, lt
BL5:
  LR r28 = r0
  B BL10
BL6:
  C cr6 = r0, r30
  BF BL8, cr6, gt
BL7:
  LR r30 = r0
BL8:
  C cr7 = r12, r28
  BF BL10, cr7, lt
BL9:
  LR r28 = r12
BL10:
  AI r29 = r29, 2
  C cr4 = r29, r27
  BT BL1, cr4, lt
BL11:
  CALL print(r28)
  CALL print(r30)
  RET
}
)";
  auto M = parseModuleOrDie(Minmax);
  auto Base = parseModuleOrDie(Minmax);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  ASSERT_TRUE(canUnrollOnce(F, LI, 0));
  ASSERT_TRUE(unrollLoopOnce(F, LI, 0));
  EXPECT_TRUE(verifyFunction(F).empty());
  EXPECT_EQ(F.numBlocks(), 12u + 10u);

  // Semantics across both parities of the iteration count.
  for (int64_t N : {9, 11, 25, 27}) {
    auto Run = [&](const Module &Mod) {
      Interpreter I(Mod);
      for (int K = 0; K != 64; ++K)
        I.storeWord(1000 + 4 * K, (K % 2 == 1) ? 100 + K : -100 - K);
      I.setReg(Reg::gpr(27), N);
      ExecResult R = I.run(*Mod.functions()[0]);
      EXPECT_FALSE(R.Trapped) << R.TrapReason;
      return R.Printed;
    };
    EXPECT_EQ(Run(*M), Run(*Base)) << "N=" << N;
  }
}

TEST(UnrollTest, RefusesNonContiguousLoop) {
  // A loop whose blocks are separated in the layout by an unrelated block.
  auto M = parseModuleOrDie(R"(
func f {
ENTRY:
  LI r4 = 0
  B HEAD
COLD:
  AI r4 = r4, 5
  B TAIL
HEAD:
  AI r4 = r4, 1
  C cr0 = r4, r27
  BT COLD, cr0, eq
TAIL:
  C cr1 = r4, r27
  BT HEAD, cr1, lt
EXIT:
  RET r4
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  ASSERT_EQ(LI.numLoops(), 1u);
  EXPECT_FALSE(canUnrollOnce(F, LI, 0));
  EXPECT_FALSE(unrollLoopOnce(F, LI, 0));
}

//===----------------------------------------------------------------------===
// Rotation
//===----------------------------------------------------------------------===

TEST(RotateTest, WhileLoopTopTest) {
  auto M = parseModuleOrDie(WhileLoop);
  auto Base = parseModuleOrDie(WhileLoop);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  ASSERT_EQ(LI.numLoops(), 1u);
  ASSERT_TRUE(canRotateLoop(F, LI, 0));

  unsigned BlocksBefore = F.numBlocks();
  ASSERT_TRUE(rotateLoop(F, LI, 0));
  EXPECT_TRUE(verifyFunction(F).empty());
  EXPECT_EQ(F.numBlocks(), BlocksBefore + 1);

  // The rotated loop no longer contains the original header (it is
  // peeled); the copy is the new latch.
  LoopInfo LI2 = LoopInfo::compute(F);
  ASSERT_EQ(LI2.numLoops(), 1u);
  BlockId OrigHead = 1; // HEAD was the second block created
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    if (F.block(B).label() == "HEAD")
      OrigHead = B;
  EXPECT_FALSE(LI2.loop(0).contains(OrigHead));

  // Semantics, including the zero-iteration case.
  for (int64_t N : {0, 1, 5, 13})
    EXPECT_EQ(runSum(*M, N), runSum(*Base, N)) << "N=" << N;
}

TEST(RotateTest, SelfLoopBecomesTwoBlockLoop) {
  auto M = parseModuleOrDie(SumLoop);
  auto Base = parseModuleOrDie(SumLoop);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  ASSERT_TRUE(canRotateLoop(F, LI, 0));
  ASSERT_TRUE(rotateLoop(F, LI, 0));
  EXPECT_TRUE(verifyFunction(F).empty());
  LoopInfo LI2 = LoopInfo::compute(F);
  ASSERT_EQ(LI2.numLoops(), 1u);
  EXPECT_EQ(LI2.loop(0).numBlocks(), 2u);
  for (int64_t N : {1, 2, 9})
    EXPECT_EQ(runSum(*M, N), runSum(*Base, N)) << "N=" << N;
}

TEST(RotateTest, RefusesTwoInLoopSuccessors) {
  // Header with a conditional branch to two in-loop blocks.
  auto M = parseModuleOrDie(R"(
func f {
PRE:
  LI r4 = 0
HEAD:
  C cr0 = r4, r9
  BF ARM2, cr0, gt
ARM1:
  AI r4 = r4, 1
  B TAIL
ARM2:
  AI r4 = r4, 2
TAIL:
  C cr1 = r4, r27
  BT HEAD, cr1, lt
EXIT:
  RET r4
}
)");
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  ASSERT_EQ(LI.numLoops(), 1u);
  EXPECT_FALSE(canRotateLoop(F, LI, 0));
}

//===----------------------------------------------------------------------===
// Full pipeline
//===----------------------------------------------------------------------===

TEST(PipelineTest, SumLoopEndToEnd) {
  auto M = parseModuleOrDie(SumLoop);
  auto Base = parseModuleOrDie(SumLoop);
  Function &F = *M->functions()[0];

  PipelineOptions Opts;
  MachineDescription MD = MachineDescription::rs6k();
  PipelineStats Stats = schedulePipeline(F, MD, Opts);
  EXPECT_TRUE(verifyFunction(F).empty());
  EXPECT_EQ(Stats.LoopsUnrolled, 1u);
  EXPECT_GE(Stats.LoopsRotated, 1u);

  // Semantics for several iteration counts.
  for (int64_t N : {1, 2, 3, 10, 31})
    EXPECT_EQ(runSum(*M, N), runSum(*Base, N)) << "N=" << N;

  // And the scheduled loop must actually be faster.
  std::vector<TraceEntry> TB, TS;
  runSum(*Base, 200, &TB);
  runSum(*M, 200, &TS);
  TimingSimulator Sim(MD);
  uint64_t CyclesBase = Sim.simulate(TB).Cycles;
  uint64_t CyclesSched = Sim.simulate(TS).Cycles;
  EXPECT_LT(CyclesSched, CyclesBase);
}

TEST(PipelineTest, WhileLoopEndToEnd) {
  auto M = parseModuleOrDie(WhileLoop);
  auto Base = parseModuleOrDie(WhileLoop);
  Function &F = *M->functions()[0];
  PipelineOptions Opts;
  MachineDescription MD = MachineDescription::rs6k();
  schedulePipeline(F, MD, Opts);
  EXPECT_TRUE(verifyFunction(F).empty());
  for (int64_t N : {0, 1, 2, 9, 40})
    EXPECT_EQ(runSum(*M, N), runSum(*Base, N)) << "N=" << N;
}

TEST(PipelineTest, TransformsDisabledStillSchedules) {
  auto M = parseModuleOrDie(SumLoop);
  Function &F = *M->functions()[0];
  PipelineOptions Opts;
  Opts.EnableUnroll = false;
  Opts.EnableRotate = false;
  PipelineStats Stats =
      schedulePipeline(F, MachineDescription::rs6k(), Opts);
  EXPECT_EQ(Stats.LoopsUnrolled, 0u);
  EXPECT_EQ(Stats.LoopsRotated, 0u);
  EXPECT_GT(Stats.Global.BlocksScheduled, 0u);
  EXPECT_TRUE(verifyFunction(F).empty());
}

TEST(PipelineTest, RegionSizeLimitSkips) {
  auto M = parseModuleOrDie(SumLoop);
  Function &F = *M->functions()[0];
  PipelineOptions Opts;
  Opts.RegionInstrLimit = 2; // everything is too big now
  Opts.EnableUnroll = false;
  Opts.EnableRotate = false;
  PipelineStats Stats =
      schedulePipeline(F, MachineDescription::rs6k(), Opts);
  EXPECT_GT(Stats.RegionsSkippedBySize, 0u);
  EXPECT_EQ(Stats.Global.UsefulMotions + Stats.Global.SpeculativeMotions, 0u);
}

TEST(PipelineTest, IrreducibleFunctionFallsBackToLocal) {
  auto M = parseModuleOrDie(R"(
func irr {
B0:
  LI r1 = 0
  CI cr0 = r1, 5
  BT B2, cr0, lt
B1:
  AI r1 = r1, 1
  CI cr1 = r1, 7
  BT B2, cr1, lt
B3:
  RET r1
B2:
  AI r1 = r1, 3
  CI cr2 = r1, 9
  BT B1, cr2, lt
B4:
  RET r1
}
)");
  Function &F = *M->functions()[0];
  PipelineOptions Opts;
  PipelineStats Stats =
      schedulePipeline(F, MachineDescription::rs6k(), Opts);
  EXPECT_EQ(Stats.FunctionsSkippedIrreducible, 1u);
  EXPECT_EQ(Stats.Global.BlocksScheduled, 0u);
  EXPECT_GT(Stats.Local.BlocksScheduled, 0u);
  EXPECT_TRUE(verifyFunction(F).empty());
}

TEST(PipelineTest, NestedLoopsScheduleInnerAndOuter) {
  auto M = parseModuleOrDie(R"(
func nest {
B0:
  LI r1 = 0
  LI r5 = 0
OUTER:
  LI r2 = 0
INNER:
  AI r2 = r2, 1
  AI r5 = r5, 1
  C cr0 = r2, r8
  BT INNER, cr0, lt
AFTER:
  AI r1 = r1, 1
  C cr1 = r1, r9
  BT OUTER, cr1, lt
EXIT:
  RET r5
}
)");
  auto Base = parseModuleOrDie(R"(
func nest {
B0:
  LI r1 = 0
  LI r5 = 0
OUTER:
  LI r2 = 0
INNER:
  AI r2 = r2, 1
  AI r5 = r5, 1
  C cr0 = r2, r8
  BT INNER, cr0, lt
AFTER:
  AI r1 = r1, 1
  C cr1 = r1, r9
  BT OUTER, cr1, lt
EXIT:
  RET r5
}
)");
  Function &F = *M->functions()[0];
  PipelineOptions Opts;
  PipelineStats Stats =
      schedulePipeline(F, MachineDescription::rs6k(), Opts);
  EXPECT_TRUE(verifyFunction(F).empty());
  EXPECT_GT(Stats.Global.RegionsScheduled, 1u);

  auto Run = [](Module &Mod) {
    Interpreter I(Mod);
    I.setReg(Reg::gpr(8), 5);
    I.setReg(Reg::gpr(9), 4);
    ExecResult R = I.run(*Mod.functions()[0]);
    EXPECT_FALSE(R.Trapped);
    return R.ReturnValue;
  };
  EXPECT_EQ(Run(*M), Run(*Base));
  EXPECT_EQ(Run(*Base), 20);
}
